"""Async job management over the sweep runner.

:class:`JobManager` is the service's brain: it owns the job table, the
FIFO queue, the worker coroutines and the thread pool the blocking
runner executes on.  Its invariants:

- **one job per digest** — concurrent submissions of the same spec
  attach to one :class:`Job`; exactly one trial executes and every
  attached client reads the same record;
- **content-addressed dedup** — a digest already answered by the
  :class:`~repro.runner.cache.ResultCache` (or recorded ok in the
  :class:`~repro.obs.registry.RunRegistry`) becomes an already-done job
  without touching the queue;
- **explicit backpressure** — per-client quotas and a bounded queue;
  violations raise :class:`QuotaExceeded` / :class:`QueueFull` carrying
  a ``retry_after`` hint (the HTTP layer maps both onto 429 +
  ``Retry-After``), and a batch submission is all-or-nothing;
- **never block the loop** — the runner executes in a thread, progress
  crosses back via :class:`~repro.runner.progress.AsyncQueueProgress`,
  and slow/vanished SSE subscribers just drop frames
  (``put_nowait`` on a bounded queue) instead of stalling the worker;
- **everything recorded** — each executed job opens the registry
  *inside its worker thread* (sqlite connections are thread-bound) and
  records through the ordinary :class:`RegistrySink` event path.

All public methods must be called from the event-loop thread.
``submit_many`` contains no awaits, so a whole batch admission is
atomic under asyncio's run-to-completion semantics.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from ..obs.logging import new_cid
from ..runner.cache import ResultCache
from ..runner.jobs import RunRecord, RunSpec
from ..runner.pool import ParallelRunner
from ..runner.progress import AsyncQueueProgress, TeeProgress, record_summary

__all__ = [
    "Job",
    "JobManager",
    "QueueFull",
    "QuotaExceeded",
    "SubmitRejected",
]

#: job states (terminal: done / failed / cancelled).
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled",
)
TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: per-subscriber SSE buffer (frames beyond this are dropped for that
#: subscriber only; the job and other subscribers are unaffected).
SUBSCRIBER_BUFFER = 256
#: per-job progress-event replay kept for late subscribers.
EVENT_HISTORY = 512
#: terminal jobs kept in the table before eviction (FIFO).
HISTORY_LIMIT = 1024


class SubmitRejected(Exception):
    """Base: a submission the service refused, with a retry hint."""

    def __init__(self, message: str, retry_after: float) -> None:
        self.retry_after = max(1.0, retry_after)
        super().__init__(message)


class QuotaExceeded(SubmitRejected):
    """The client already has its quota of active jobs."""


class QueueFull(SubmitRejected):
    """The service-wide queue is at capacity."""


@dataclass
class Job:
    """One digest's lifecycle inside the manager."""

    digest: str
    spec: RunSpec
    state: str = QUEUED
    #: client ids attached to this job (submitters + dedup joiners).
    clients: Set[str] = field(default_factory=set)
    record: Optional[RunRecord] = None
    #: progress payloads so far (replayed to late subscribers).
    events: List[Dict[str, Any]] = field(default_factory=list)
    subscribers: Set[asyncio.Queue] = field(default_factory=set)
    runner: Optional[ParallelRunner] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)
    #: True when the job was answered by cache/registry, not execution.
    from_cache: bool = False
    #: SSE frames dropped across all subscribers (observability).
    dropped_frames: int = 0
    #: correlation id threaded into runner and worker structured logs
    #: (minted when the job starts executing; empty for cache answers).
    cid: str = ""

    def active(self) -> bool:
        return self.state not in TERMINAL

    def status_payload(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "digest": self.digest,
            "state": self.state,
            "label": self.spec.display(),
            "clients": sorted(self.clients),
            "from_cache": self.from_cache,
        }
        if self.cid:
            out["cid"] = self.cid
        if self.record is not None:
            out["record"] = record_summary(self.record)
        return out


class JobManager:
    """Owns jobs, queue, quotas, and the runner thread pool."""

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        registry_path: Optional[str] = None,
        concurrency: int = 1,
        max_queue: int = 64,
        quota: int = 8,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1: {concurrency}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1: {max_queue}")
        if quota < 1:
            raise ValueError(f"quota must be >= 1: {quota}")
        self.cache = cache
        self.registry_path = registry_path
        self.concurrency = concurrency
        self.max_queue = max_queue
        self.quota = quota
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # insertion order, for eviction
        self._queue: asyncio.Queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=concurrency, thread_name_prefix="repro-job"
        )
        self._workers: List[asyncio.Task] = []
        self._wall_times: List[float] = []  # recent executed wall clocks
        #: admission rejections since start (telemetry counters).
        self.rejected_quota = 0
        self.rejected_queue = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker coroutines (call once, loop running)."""
        if self._workers:
            return
        for index in range(self.concurrency):
            self._workers.append(
                asyncio.get_running_loop().create_task(
                    self._worker(), name=f"repro-worker-{index}"
                )
            )

    async def aclose(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers.clear()
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _active_for(self, client: str) -> int:
        return sum(
            1 for job in self.jobs.values()
            if job.active() and client in job.clients
        )

    def retry_after(self) -> float:
        """Seconds a rejected client should wait before retrying.

        Estimated drain time of one queue slot: mean executed wall
        clock (default 5s before any job completed) times queued jobs,
        over the worker count.
        """
        mean = (
            sum(self._wall_times) / len(self._wall_times)
            if self._wall_times else 5.0
        )
        queued = sum(1 for j in self.jobs.values() if j.state == QUEUED)
        return min(600.0, max(1.0, mean * max(1, queued) / self.concurrency))

    def submit_many(
        self, specs: Sequence[RunSpec], client: str
    ) -> List[Job]:
        """Admit a batch of specs for one client, all-or-nothing.

        Returns one :class:`Job` per spec (order preserved): a fresh
        queued job, an existing job the client attached to (dedup), or
        an already-done job answered from cache/registry.  Raises
        :class:`QuotaExceeded` / :class:`QueueFull` without admitting
        anything when the batch does not fit.  No awaits — the whole
        admission decision is atomic on the event loop.
        """
        digests = [spec.digest() for spec in specs]

        # Pass 1 (no side effects): how many genuinely new jobs would
        # this batch queue, and does the whole batch fit?
        new_digests = []
        seen: Set[str] = set()
        for spec, digest in zip(specs, digests):
            if digest in seen:
                continue
            seen.add(digest)
            job = self.jobs.get(digest)
            if job is not None:
                continue
            if self._lookup_record(spec) is None:
                new_digests.append(digest)

        active = self._active_for(client)
        # Attaching to an existing active job counts against the quota
        # too — a client cannot shadow-queue unlimited work by riding
        # other clients' submissions.
        joining = sum(
            1 for digest in seen
            if digest in self.jobs and self.jobs[digest].active()
            and client not in self.jobs[digest].clients
        )
        if active + joining + len(new_digests) > self.quota:
            self.rejected_quota += 1
            raise QuotaExceeded(
                f"client {client!r} would hold "
                f"{active + joining + len(new_digests)} active jobs; "
                f"the quota is {self.quota}",
                self.retry_after(),
            )
        queued = sum(1 for j in self.jobs.values() if j.state == QUEUED)
        if queued + len(new_digests) > self.max_queue:
            self.rejected_queue += 1
            raise QueueFull(
                f"queue is full ({queued}/{self.max_queue} queued; "
                f"batch adds {len(new_digests)})",
                self.retry_after(),
            )

        # Pass 2: admit.
        out: List[Job] = []
        for spec, digest in zip(specs, digests):
            job = self.jobs.get(digest)
            if job is None:
                record = self._lookup_record(spec)
                if record is not None:
                    job = self._adopt_record(spec, digest, record)
                else:
                    job = Job(digest=digest, spec=spec)
                    self._remember(job)
                    self._queue.put_nowait(digest)
            job.clients.add(client)
            out.append(job)
        return out

    def _remember(self, job: Job) -> None:
        self.jobs[job.digest] = job
        self._order.append(job.digest)
        self._evict()

    def _evict(self) -> None:
        """Drop the oldest terminal jobs past the history limit."""
        terminal = [d for d in self._order if not self.jobs[d].active()]
        excess = len(self.jobs) - HISTORY_LIMIT
        for digest in terminal:
            if excess <= 0:
                break
            if self.jobs[digest].subscribers:
                continue
            del self.jobs[digest]
            self._order.remove(digest)
            excess -= 1

    def _lookup_record(self, spec: RunSpec) -> Optional[RunRecord]:
        """Dedup: an existing ok result for this digest, if any."""
        if self.cache is not None:
            record = self.cache.get(spec)
            if record is not None:
                return record
        if self.registry_path and os.path.exists(self.registry_path):
            from ..obs.registry import RunRegistry

            with RunRegistry(self.registry_path) as registry:
                rows = registry.runs(
                    digest=spec.digest(), ok=True,
                    limit=1, newest_first=True,
                )
            if rows:
                row = rows[0]
                return RunRecord(
                    digest=row.spec_digest,
                    ok=True,
                    measurement=(
                        RunRecord.measurement_from_dict(row.measurement)
                        if row.measurement else None
                    ),
                    metrics=row.metrics,
                    wall_time=row.wall_time,
                    worker=row.worker,
                    attempts=row.attempts,
                    cached=True,
                )
        return None

    def _adopt_record(
        self, spec: RunSpec, digest: str, record: RunRecord
    ) -> Job:
        job = Job(
            digest=digest, spec=spec, state=DONE,
            record=record, from_cache=True,
        )
        job.events.append(
            {
                "event": "job_finished",
                "index": 0,
                "digest": digest,
                "label": spec.display(),
                "record": record_summary(record),
            }
        )
        job.done.set()
        self._remember(job)
        return job

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            digest = await self._queue.get()
            job = self.jobs.get(digest)
            try:
                if job is None or job.state != QUEUED:
                    continue  # cancelled (or evicted) while queued
                await self._execute(job)
            finally:
                self._queue.task_done()

    async def _execute(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = RUNNING
        job.cid = new_cid()
        bridge: asyncio.Queue = asyncio.Queue()
        progress = AsyncQueueProgress(loop, bridge)
        runner = ParallelRunner(
            1, cache=self.cache, progress=progress, cid=job.cid
        )
        job.runner = runner
        pump = loop.create_task(self._pump(job, bridge))
        try:
            record = await loop.run_in_executor(
                self._executor, self._run_in_thread, runner, job.spec
            )
        except Exception as exc:  # defensive: run() should not raise
            record = RunRecord(
                digest=job.digest, ok=False,
                error=f"service execution error: {exc!r}",
            )
        finally:
            # All progress callbacks the worker thread scheduled are
            # already queued ahead of this sentinel (call_soon_threadsafe
            # preserves scheduling order), so the pump drains every real
            # event before it sees None.
            bridge.put_nowait(None)
            await pump
            job.runner = None
        job.record = record
        if record.cancelled:
            job.state = CANCELLED
        elif record.ok:
            job.state = DONE
        else:
            job.state = FAILED
        if record.ok and not record.cached:
            self._wall_times.append(record.wall_time)
            del self._wall_times[:-50]
        self._finish(job)

    def _run_in_thread(self, runner: ParallelRunner, spec: RunSpec):
        """Blocking runner invocation (thread-pool side).

        The registry connection must be opened here — sqlite3 objects
        are bound to their creating thread — and recording rides the
        standard RegistrySink progress path.
        """
        registry = None
        if self.registry_path:
            from ..obs.registry import RegistrySink, RunRegistry

            registry = RunRegistry(self.registry_path)
            runner.progress = TeeProgress(
                runner.progress, RegistrySink(registry, label="service")
            )
        try:
            return runner.run([spec])[0]
        finally:
            if registry is not None:
                registry.close()

    async def _pump(self, job: Job, bridge: asyncio.Queue) -> None:
        """Forward runner progress to history + subscribers until the
        end-of-run sentinel."""
        while True:
            payload = await bridge.get()
            if payload is None:
                return
            if len(job.events) < EVENT_HISTORY:
                job.events.append(payload)
            self._broadcast(job, payload)

    def _broadcast(self, job: Job, payload: Dict[str, Any]) -> None:
        for queue in list(job.subscribers):
            try:
                queue.put_nowait(payload)
            except asyncio.QueueFull:
                job.dropped_frames += 1

    def _finish(self, job: Job) -> None:
        self._broadcast(job, {"event": "done", "job": job.status_payload()})
        job.done.set()

    # ------------------------------------------------------------------
    # watching
    # ------------------------------------------------------------------
    def subscribe(self, digest: str) -> asyncio.Queue:
        """A bounded queue of this job's events, past and future.

        Already-emitted events are replayed first; a terminal job gets
        its ``done`` frame immediately.  The caller must
        :meth:`unsubscribe` the queue when finished with it.
        """
        job = self._require(digest)
        queue: asyncio.Queue = asyncio.Queue(maxsize=SUBSCRIBER_BUFFER)
        for payload in job.events[-(SUBSCRIBER_BUFFER - 1):]:
            queue.put_nowait(payload)
        if not job.active():
            queue.put_nowait({"event": "done", "job": job.status_payload()})
        else:
            job.subscribers.add(queue)
        return queue

    def unsubscribe(self, digest: str, queue: asyncio.Queue) -> None:
        job = self.jobs.get(digest)
        if job is not None:
            job.subscribers.discard(queue)

    # ------------------------------------------------------------------
    # cancellation / introspection
    # ------------------------------------------------------------------
    def cancel(self, digest: str) -> Job:
        """Cancel a queued or running job; terminal jobs are left as-is.

        A queued job is resolved immediately (its queue entry becomes a
        no-op); a running job is cancelled through the runner hook and
        resolves when its trial lands.
        """
        job = self._require(digest)
        if not job.active():
            return job
        if job.state == QUEUED:
            job.state = CANCELLED
            job.record = RunRecord(
                digest=digest, ok=False, cancelled=True,
                error="cancelled while queued", attempts=0,
            )
            self._finish(job)
        elif job.runner is not None:
            job.runner.cancel(digest)
        return job

    def _require(self, digest: str) -> Job:
        job = self.jobs.get(digest)
        if job is None:
            raise KeyError(digest)
        return job

    @property
    def workers_started(self) -> bool:
        """True once :meth:`start` spawned the worker coroutines."""
        return bool(self._workers)

    def telemetry(self) -> Dict[str, Any]:
        """Scrape-time operational readings (the ``/metrics`` gauges).

        ``trace_dropped_records`` sums the ``trace.dropped_records``
        gauge of every finished job's metrics snapshot — nonzero means
        a bounded TraceLog overflowed and per-event records were shed.
        ``link_coalesced_total`` sums the per-job ``link.coalesced_total``
        gauge the same way (same-instant deliveries merged per link).
        """
        running = sum(1 for j in self.jobs.values() if j.state == RUNNING)
        queued = sum(1 for j in self.jobs.values() if j.state == QUEUED)
        subscribers = sum(len(j.subscribers) for j in self.jobs.values())
        dropped_frames = sum(
            j.dropped_frames for j in self.jobs.values()
        )
        trace_dropped = 0.0
        link_coalesced = 0.0
        for job in self.jobs.values():
            metrics = job.record.metrics if job.record is not None else None
            gauges = (metrics or {}).get("gauges")
            if isinstance(gauges, dict):
                trace_dropped += gauges.get("trace.dropped_records", 0) or 0
                link_coalesced += gauges.get("link.coalesced_total", 0) or 0
        return {
            "in_flight": running,
            "queued": queued,
            "jobs": len(self.jobs),
            "subscribers": subscribers,
            "dropped_frames": dropped_frames,
            "rejected_quota": self.rejected_quota,
            "rejected_queue": self.rejected_queue,
            "trace_dropped_records": trace_dropped,
            "link_coalesced_total": link_coalesced,
        }

    def stats(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "jobs": len(self.jobs),
            "states": states,
            "queued": sum(
                1 for j in self.jobs.values() if j.state == QUEUED
            ),
            "max_queue": self.max_queue,
            "quota": self.quota,
            "concurrency": self.concurrency,
            "retry_after": self.retry_after(),
        }
