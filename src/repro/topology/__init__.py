"""AS-level topologies: builders, CAIDA and iPlane dataset support."""

from .builders import (
    barabasi_albert,
    binary_tree,
    clique,
    erdos_renyi,
    from_networkx,
    line,
    ring,
    star,
)
from .caida import (
    caida_hierarchy,
    dump_as_rel,
    generate_as_rel,
    parse_as_rel,
    synthetic_caida_topology,
)
from .iplane import generate_interpop, parse_interpop, synthetic_iplane_topology
from .model import ASSpec, InterASLink, Topology, TopologyError

__all__ = [
    "barabasi_albert",
    "binary_tree",
    "clique",
    "erdos_renyi",
    "from_networkx",
    "line",
    "ring",
    "star",
    "caida_hierarchy",
    "dump_as_rel",
    "generate_as_rel",
    "parse_as_rel",
    "synthetic_caida_topology",
    "generate_interpop",
    "parse_interpop",
    "synthetic_iplane_topology",
    "ASSpec",
    "InterASLink",
    "Topology",
    "TopologyError",
]
