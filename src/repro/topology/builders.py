"""Artificial topology builders (paper §2: "topologies based on ...
theoretical models").

All builders return :class:`~repro.topology.model.Topology` objects with
1-based consecutive AS numbers and FLAT relationships (the setting of the
paper's clique experiments); random models take explicit seeds so every
experiment is reproducible.
"""

from __future__ import annotations

import random
import networkx as nx

from ..bgp.policy import Relationship
from .model import Topology, TopologyError

__all__ = [
    "clique",
    "line",
    "ring",
    "star",
    "binary_tree",
    "erdos_renyi",
    "barabasi_albert",
    "from_networkx",
]

DEFAULT_LATENCY = 0.01


def clique(n: int, *, latency: float = DEFAULT_LATENCY) -> Topology:
    """Full mesh of ``n`` ASes — the paper's evaluation topology."""
    if n < 2:
        raise TopologyError(f"clique needs >= 2 ASes: {n}")
    topo = Topology(name=f"clique{n}")
    for asn in range(1, n + 1):
        topo.add_as(asn)
    for a in range(1, n + 1):
        for b in range(a + 1, n + 1):
            topo.add_link(a, b, latency=latency)
    return topo


def line(n: int, *, latency: float = DEFAULT_LATENCY) -> Topology:
    """A chain as1 - as2 - ... - asN."""
    if n < 2:
        raise TopologyError(f"line needs >= 2 ASes: {n}")
    topo = Topology(name=f"line{n}")
    for asn in range(1, n + 1):
        topo.add_as(asn)
    for asn in range(1, n):
        topo.add_link(asn, asn + 1, latency=latency)
    return topo


def ring(n: int, *, latency: float = DEFAULT_LATENCY) -> Topology:
    """A cycle of ``n`` ASes."""
    if n < 3:
        raise TopologyError(f"ring needs >= 3 ASes: {n}")
    topo = line(n, latency=latency)
    topo.name = f"ring{n}"
    topo.add_link(n, 1, latency=latency)
    return topo


def star(n: int, *, latency: float = DEFAULT_LATENCY) -> Topology:
    """AS1 at the hub, ``n - 1`` spokes (hub provides transit: C2P)."""
    if n < 2:
        raise TopologyError(f"star needs >= 2 ASes: {n}")
    topo = Topology(name=f"star{n}")
    for asn in range(1, n + 1):
        topo.add_as(asn, role="hub" if asn == 1 else "stub")
    for asn in range(2, n + 1):
        topo.add_link(1, asn, relationship=Relationship.CUSTOMER, latency=latency)
    return topo


def binary_tree(depth: int, *, latency: float = DEFAULT_LATENCY) -> Topology:
    """Complete binary tree; parents are providers of their children."""
    if depth < 1:
        raise TopologyError(f"tree needs depth >= 1: {depth}")
    n = (1 << (depth + 1)) - 1
    topo = Topology(name=f"tree-d{depth}")
    for asn in range(1, n + 1):
        topo.add_as(asn, role="root" if asn == 1 else "")
    for asn in range(1, n + 1):
        for child in (2 * asn, 2 * asn + 1):
            if child <= n:
                topo.add_link(
                    asn, child,
                    relationship=Relationship.CUSTOMER, latency=latency,
                )
    return topo


def erdos_renyi(
    n: int,
    p: float,
    *,
    seed: int = 0,
    latency: float = DEFAULT_LATENCY,
    ensure_connected: bool = True,
) -> Topology:
    """G(n, p) random graph, optionally patched to be connected.

    Connectivity patching links each extra component to the first one
    with a single edge (deterministic given the seed), so the emulated
    network is usable while the degree distribution stays ER-like.
    """
    if not 0.0 <= p <= 1.0:
        raise TopologyError(f"p must be in [0, 1]: {p}")
    graph = nx.gnp_random_graph(n, p, seed=seed)
    if ensure_connected and n > 0:
        components = [sorted(c) for c in nx.connected_components(graph)]
        components.sort()
        anchor = components[0][0]
        for comp in components[1:]:
            graph.add_edge(anchor, comp[0])
    topo = from_networkx(graph, name=f"er{n}-p{p}", latency=latency)
    return topo


def barabasi_albert(
    n: int,
    m: int = 2,
    *,
    seed: int = 0,
    latency: float = DEFAULT_LATENCY,
) -> Topology:
    """Preferential-attachment graph — the classic AS-like degree model."""
    if n <= m:
        raise TopologyError(f"need n > m: n={n}, m={m}")
    graph = nx.barabasi_albert_graph(n, m, seed=seed)
    return from_networkx(graph, name=f"ba{n}-m{m}", latency=latency)


def from_networkx(
    graph: nx.Graph,
    *,
    name: str = "graph",
    latency: float = DEFAULT_LATENCY,
    relationship: Relationship = Relationship.FLAT,
) -> Topology:
    """Convert any simple graph; nodes are renumbered to ASNs 1..n."""
    topo = Topology(name=name)
    mapping = {}
    for i, node in enumerate(sorted(graph.nodes, key=str), start=1):
        mapping[node] = i
        topo.add_as(i, name=f"as{i}")
    for u, v in sorted(graph.edges, key=lambda e: (str(e[0]), str(e[1]))):
        a, b = mapping[u], mapping[v]
        if a == b:
            continue
        topo.add_link(min(a, b), max(a, b), relationship=relationship, latency=latency)
    return topo
