"""CAIDA AS-Relationships dataset support (paper §3).

The paper builds topologies from CAIDA's serial-1 ``as-rel`` files::

    # comment lines start with '#'
    <provider-asn>|<customer-asn>|-1
    <peer-asn>|<peer-asn>|0

The real dataset is not redistributable here, so alongside the parser we
ship :func:`generate_as_rel`, a synthetic generator producing a
three-tier customer-provider hierarchy (tier-1 clique peering at the
top, transit ASes in the middle, stubs at the bottom, plus lateral
peering).  The generator emits the exact file format, so the full
parse → topology → emulation pipeline is exercised end to end.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..bgp.policy import Relationship
from .model import Topology, TopologyError

__all__ = [
    "parse_as_rel",
    "dump_as_rel",
    "generate_as_rel",
    "synthetic_caida_topology",
    "caida_hierarchy",
]

#: CAIDA relationship codes.
_P2C = -1
_P2P = 0


def parse_as_rel(text: str, *, name: str = "caida", latency: float = 0.01) -> Topology:
    """Parse CAIDA serial-1 as-rel text into a :class:`Topology`."""
    topo = Topology(name=name)
    seen_as = set()
    edges: List[Tuple[int, int, int]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) < 3:
            raise TopologyError(f"line {lineno}: expected a|b|rel, got {raw!r}")
        try:
            a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError:
            raise TopologyError(f"line {lineno}: non-integer field in {raw!r}")
        if rel not in (_P2C, _P2P):
            raise TopologyError(f"line {lineno}: unknown relationship {rel}")
        seen_as.update((a, b))
        edges.append((a, b, rel))
    for asn in sorted(seen_as):
        topo.add_as(asn)
    for a, b, rel in edges:
        if topo.link_between(a, b) is not None:
            continue  # datasets occasionally duplicate; keep the first
        relationship = (
            Relationship.CUSTOMER if rel == _P2C else Relationship.PEER
        )
        topo.add_link(a, b, relationship=relationship, latency=latency)
    return topo


def dump_as_rel(topo: Topology) -> str:
    """Serialize a topology back to as-rel text (FLAT links become peers)."""
    lines = [f"# as-rel dump of {topo.name}: {len(topo)} ASes"]
    for link in topo.links:
        if link.relationship is Relationship.CUSTOMER:
            lines.append(f"{link.a}|{link.b}|{_P2C}")
        elif link.relationship is Relationship.PROVIDER:
            lines.append(f"{link.b}|{link.a}|{_P2C}")
        else:
            lines.append(f"{link.a}|{link.b}|{_P2P}")
    return "\n".join(lines) + "\n"


def generate_as_rel(
    *,
    tier1: int = 4,
    transit: int = 8,
    stubs: int = 20,
    seed: int = 0,
    extra_peering_prob: float = 0.15,
    multihoming_prob: float = 0.3,
) -> str:
    """Generate synthetic as-rel text with a realistic 3-tier hierarchy.

    - tier-1 ASes (ASN 1..tier1): full peering clique, no providers;
    - transit ASes: 1-2 providers drawn from tier-1, lateral peering
      with probability ``extra_peering_prob``;
    - stub ASes: 1-2 providers drawn from the transit tier.

    Deterministic for a given ``seed``.
    """
    if tier1 < 1 or transit < 1 or stubs < 0:
        raise TopologyError("need tier1 >= 1, transit >= 1, stubs >= 0")
    rng = random.Random(seed)
    lines = [
        "# synthetic CAIDA-style as-rel file",
        f"# tiers: tier1={tier1} transit={transit} stubs={stubs} seed={seed}",
    ]
    tier1_asns = list(range(1, tier1 + 1))
    transit_asns = list(range(tier1 + 1, tier1 + transit + 1))
    stub_asns = list(
        range(tier1 + transit + 1, tier1 + transit + stubs + 1)
    )
    for i, a in enumerate(tier1_asns):
        for b in tier1_asns[i + 1:]:
            lines.append(f"{a}|{b}|{_P2P}")
    for asn in transit_asns:
        providers = rng.sample(
            tier1_asns, 2 if rng.random() < multihoming_prob and tier1 >= 2 else 1
        )
        for provider in providers:
            lines.append(f"{provider}|{asn}|{_P2C}")
    for i, a in enumerate(transit_asns):
        for b in transit_asns[i + 1:]:
            if rng.random() < extra_peering_prob:
                lines.append(f"{a}|{b}|{_P2P}")
    for asn in stub_asns:
        providers = rng.sample(
            transit_asns,
            2 if rng.random() < multihoming_prob and transit >= 2 else 1,
        )
        for provider in providers:
            lines.append(f"{provider}|{asn}|{_P2C}")
    return "\n".join(lines) + "\n"


def synthetic_caida_topology(
    *,
    tier1: int = 4,
    transit: int = 8,
    stubs: int = 20,
    seed: int = 0,
    name: Optional[str] = None,
) -> Topology:
    """Generate + parse in one step (the usual experiment entry point)."""
    text = generate_as_rel(tier1=tier1, transit=transit, stubs=stubs, seed=seed)
    topo = parse_as_rel(
        text, name=name or f"caida-synth-t{tier1}-m{transit}-s{stubs}"
    )
    for spec in topo.ases:
        role = (
            "tier1" if spec.asn <= tier1
            else "transit" if spec.asn <= tier1 + transit
            else "stub"
        )
        # ASSpec is frozen; rebuild with the role annotation.
        topo._ases[spec.asn] = type(spec)(spec.asn, spec.name, role)
    return topo


def caida_hierarchy(n: int) -> Topology:
    """A sized synthetic CAIDA hierarchy — the sweep-style factory.

    Same call shape as :func:`~repro.topology.builders.clique`
    (``factory(n)``), so it slots into :class:`~repro.runner.jobs.RunSpec`
    grids and the spec registry under the name ``"caida"``.  ``n`` total
    ASes (numbered 1..n, as the experiment layer expects) are carved
    into the three tiers deterministically:

    - tier-1: ~cube root of n, capped at 10 (4 at the paper's scales,
      10 at Internet scale);
    - transit: ~10% of n;
    - stubs: the rest.

    Fixed generator seed, so a given ``n`` is always the same graph —
    run-to-run variation comes from the experiment seed, exactly like
    the other registered topologies.
    """
    if n < 2:
        raise TopologyError(f"need n >= 2 ASes, got {n}")
    tier1 = max(1, min(10, round(n ** (1 / 3))))
    transit = max(1, min(n - tier1, n // 10))
    stubs = n - tier1 - transit
    return synthetic_caida_topology(
        tier1=tier1, transit=transit, stubs=stubs, seed=0,
        name=f"caida-{n}",
    )
