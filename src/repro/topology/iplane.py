"""iPlane Inter-PoP links dataset support (paper §3).

The paper builds data-driven topologies from the iPlane "Inter-PoP
links" dataset, whose records name PoPs (points of presence) and the
measured latency between them.  We accept the whitespace-separated
form::

    # comment
    <pop-id> <pop-id> [latency-ms]

where a PoP id is ``<asn>_<pop-index>`` (iPlane encodes the owning AS in
the PoP identifier).  Because the framework emulates one device per AS,
PoPs collapse to their AS and inter-AS latency is the median of the
observed PoP-pair latencies.

The real dataset is not available offline, so :func:`generate_interpop`
produces synthetic files with the same format: ASes get 1-4 PoPs, the
AS-level backbone is a small-world-ish connected graph, and latencies
are distance-flavoured lognormals.
"""

from __future__ import annotations

import random
import statistics
from typing import Dict, List, Optional, Tuple

from .model import Topology, TopologyError

__all__ = ["parse_interpop", "generate_interpop", "synthetic_iplane_topology"]

DEFAULT_LATENCY_MS = 10.0


def parse_interpop(
    text: str, *, name: str = "iplane", min_latency_ms: float = 0.1
) -> Topology:
    """Parse inter-PoP records into an AS-level :class:`Topology`."""
    samples: Dict[Tuple[int, int], List[float]] = {}
    seen_as = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise TopologyError(f"line {lineno}: expected two PoPs: {raw!r}")
        asn_a = _pop_asn(parts[0], lineno)
        asn_b = _pop_asn(parts[1], lineno)
        if asn_a == asn_b:
            continue  # intra-AS PoP link: abstracted away
        latency = DEFAULT_LATENCY_MS
        if len(parts) >= 3:
            try:
                latency = float(parts[2])
            except ValueError:
                raise TopologyError(f"line {lineno}: bad latency {parts[2]!r}")
            if latency <= 0:
                latency = min_latency_ms
        key = (min(asn_a, asn_b), max(asn_a, asn_b))
        samples.setdefault(key, []).append(latency)
        seen_as.update(key)
    topo = Topology(name=name)
    for asn in sorted(seen_as):
        topo.add_as(asn)
    for (a, b), lats in sorted(samples.items()):
        topo.add_link(a, b, latency=statistics.median(lats) / 1000.0)
    return topo


def _pop_asn(pop: str, lineno: int) -> int:
    """AS number encoded in a PoP id (``asn_popidx`` or bare ``asn``)."""
    head = pop.split("_", 1)[0]
    try:
        asn = int(head)
    except ValueError:
        raise TopologyError(f"line {lineno}: bad PoP id {pop!r}")
    if asn <= 0:
        raise TopologyError(f"line {lineno}: bad ASN in PoP id {pop!r}")
    return asn


def generate_interpop(
    *,
    n_as: int = 12,
    seed: int = 0,
    mean_degree: float = 3.0,
    pops_per_as: Tuple[int, int] = (1, 4),
) -> str:
    """Generate a synthetic inter-PoP file (same format as the dataset).

    The AS graph is a random connected backbone: a random spanning tree
    (guaranteeing connectivity) plus extra edges up to the target mean
    degree.  Each AS-level adjacency is realized by 1-3 PoP pairs with
    lognormal latencies, so the parser's median aggregation is exercised.
    """
    if n_as < 2:
        raise TopologyError(f"need >= 2 ASes: {n_as}")
    rng = random.Random(seed)
    asns = list(range(1, n_as + 1))
    pops: Dict[int, List[str]] = {
        asn: [f"{asn}_{i}" for i in range(rng.randint(*pops_per_as))]
        for asn in asns
    }
    # Random spanning tree, then extra edges.
    edges = set()
    connected = [asns[0]]
    for asn in asns[1:]:
        other = rng.choice(connected)
        edges.add((min(asn, other), max(asn, other)))
        connected.append(asn)
    target_edges = int(mean_degree * n_as / 2)
    attempts = 0
    while len(edges) < target_edges and attempts < 20 * target_edges:
        attempts += 1
        a, b = rng.sample(asns, 2)
        edges.add((min(a, b), max(a, b)))
    lines = [
        "# synthetic iPlane-style inter-PoP links",
        f"# n_as={n_as} seed={seed} mean_degree={mean_degree}",
    ]
    for a, b in sorted(edges):
        base = rng.lognormvariate(2.3, 0.6)  # ~10ms median, heavy tail
        for _ in range(rng.randint(1, 3)):
            pop_a = rng.choice(pops[a])
            pop_b = rng.choice(pops[b])
            jittered = max(0.2, base * rng.uniform(0.8, 1.25))
            lines.append(f"{pop_a} {pop_b} {jittered:.2f}")
    return "\n".join(lines) + "\n"


def synthetic_iplane_topology(
    *, n_as: int = 12, seed: int = 0, name: Optional[str] = None
) -> Topology:
    """Generate + parse in one step."""
    text = generate_interpop(n_as=n_as, seed=seed)
    return parse_interpop(text, name=name or f"iplane-synth-{n_as}")
