"""AS-level topology model.

Topologies are pure data — AS numbers, inter-AS links, business
relationships — independent of the emulation substrate.  The framework
("repro.framework") turns a :class:`Topology` into live emulated devices;
builders (clique, random models) and dataset loaders (CAIDA, iPlane)
produce them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

import networkx as nx

from ..bgp.policy import Relationship

__all__ = ["ASSpec", "InterASLink", "Topology", "TopologyError"]


class TopologyError(ValueError):
    """Malformed topology (self-loop, duplicate link, unknown AS...)."""


@dataclass(frozen=True)
class ASSpec:
    """One autonomous system in the topology."""

    asn: int
    name: str = ""
    #: annotation for dataset-derived topologies (e.g. "tier1", "stub").
    role: str = ""

    def label(self) -> str:
        """Display name (explicit name or a generated one)."""
        return self.name or f"as{self.asn}"


@dataclass(frozen=True)
class InterASLink:
    """An inter-AS adjacency.

    ``relationship`` is from ``a``'s point of view: CUSTOMER means *b is
    a's customer* (a provides transit to b); PEER/FLAT are symmetric.
    """

    a: int
    b: int
    relationship: Relationship = Relationship.FLAT
    latency: float = 0.01

    def endpoints(self) -> Tuple[int, int]:
        """The two ASNs as a tuple."""
        return (self.a, self.b)

    def relationship_for(self, asn: int) -> Relationship:
        """The relationship of the *other* endpoint, seen from ``asn``."""
        if asn == self.a:
            return self.relationship
        if asn == self.b:
            return self.relationship.inverse
        raise TopologyError(f"AS{asn} is not on link {self.a}-{self.b}")

    def other(self, asn: int) -> int:
        """The opposite endpoint."""
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise TopologyError(f"AS{asn} is not on link {self.a}-{self.b}")


class Topology:
    """A set of ASes plus inter-AS links with relationships."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._ases: Dict[int, ASSpec] = {}
        self._links: List[InterASLink] = []
        self._adjacency: Dict[int, Set[int]] = {}
        self._link_by_pair: Dict[Tuple[int, int], InterASLink] = {}

    # ------------------------------------------------------------------
    def add_as(self, asn: int, *, name: str = "", role: str = "") -> ASSpec:
        """Add an AS; raises on duplicates or bad ASNs."""
        if asn <= 0:
            raise TopologyError(f"ASN must be positive: {asn!r}")
        if asn in self._ases:
            raise TopologyError(f"duplicate AS: {asn}")
        spec = ASSpec(asn, name=name, role=role)
        self._ases[asn] = spec
        self._adjacency[asn] = set()
        return spec

    def add_link(
        self,
        a: int,
        b: int,
        *,
        relationship: Relationship = Relationship.FLAT,
        latency: float = 0.01,
    ) -> InterASLink:
        if a == b:
            raise TopologyError(f"self-loop at AS{a}")
        for asn in (a, b):
            if asn not in self._ases:
                raise TopologyError(f"unknown AS: {asn}")
        if b in self._adjacency[a]:
            raise TopologyError(f"duplicate link {a}-{b}")
        link = InterASLink(a, b, relationship=relationship, latency=latency)
        self._links.append(link)
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._link_by_pair[(a, b) if a < b else (b, a)] = link
        return link

    # ------------------------------------------------------------------
    @property
    def ases(self) -> List[ASSpec]:
        """All AS specs, ASN-ordered."""
        return [self._ases[asn] for asn in sorted(self._ases)]

    @property
    def asns(self) -> List[int]:
        """All AS numbers, sorted."""
        return sorted(self._ases)

    @property
    def links(self) -> List[InterASLink]:
        """All inter-AS links, in insertion order."""
        return list(self._links)

    def __len__(self) -> int:
        return len(self._ases)

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def spec(self, asn: int) -> ASSpec:
        """The ASSpec for one ASN; raises on unknown AS."""
        try:
            return self._ases[asn]
        except KeyError:
            raise TopologyError(f"unknown AS: {asn}") from None

    def neighbors(self, asn: int) -> List[int]:
        """Adjacent ASNs / nodes."""
        if asn not in self._adjacency:
            raise TopologyError(f"unknown AS: {asn}")
        return sorted(self._adjacency[asn])

    def degree(self, asn: int) -> int:
        """Number of adjacencies."""
        return len(self.neighbors(asn))

    def link_between(self, a: int, b: int) -> Optional[InterASLink]:
        """The link joining two nodes/ASes, if any — O(1)."""
        return self._link_by_pair.get((a, b) if a < b else (b, a))

    def links_of(self, asn: int) -> Iterator[InterASLink]:
        for link in self._links:
            if asn in link.endpoints():
                yield link

    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True when the AS graph is one component."""
        return len(self) > 0 and nx.is_connected(self.to_networkx())

    def to_networkx(self) -> nx.Graph:
        """Export as a networkx graph with attributes."""
        graph = nx.Graph()
        for spec in self.ases:
            graph.add_node(spec.asn, name=spec.label(), role=spec.role)
        for link in self._links:
            graph.add_edge(
                link.a, link.b,
                relationship=link.relationship.value, latency=link.latency,
            )
        return graph

    def customers_of(self, asn: int) -> List[int]:
        """ASes that buy transit from ``asn``."""
        out = []
        for link in self.links_of(asn):
            if link.relationship_for(asn) is Relationship.CUSTOMER:
                out.append(link.other(asn))
        return sorted(out)

    def providers_of(self, asn: int) -> List[int]:
        out = []
        for link in self.links_of(asn):
            if link.relationship_for(asn) is Relationship.PROVIDER:
                out.append(link.other(asn))
        return sorted(out)

    def peers_of(self, asn: int) -> List[int]:
        out = []
        for link in self.links_of(asn):
            if link.relationship_for(asn) is Relationship.PEER:
                out.append(link.other(asn))
        return sorted(out)

    def validate(self) -> None:
        """Raise :class:`TopologyError` on structural problems."""
        if not self._ases:
            raise TopologyError("empty topology")
        # provider cycles make Gao-Rexford ill-defined; detect them.
        digraph = nx.DiGraph()
        digraph.add_nodes_from(self._ases)
        for link in self._links:
            if link.relationship is Relationship.CUSTOMER:
                digraph.add_edge(link.a, link.b)  # provider -> customer
            elif link.relationship is Relationship.PROVIDER:
                digraph.add_edge(link.b, link.a)
        if not nx.is_directed_acyclic_graph(digraph):
            cycle = nx.find_cycle(digraph)
            raise TopologyError(f"customer-provider cycle: {cycle}")

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name!r} ases={len(self._ases)} "
            f"links={len(self._links)}>"
        )
