"""Golden-file tests for the human-facing analysis surfaces.

These pin the *exact* text of ``experiment_report``, the provenance
reports, and the log-scan series on one small fixed-seed run.  The
simulator is virtual-time deterministic, so any diff here is a real
behaviour or formatting change — review it, then regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/analysis/test_golden.py

and commit the updated files under ``tests/analysis/golden/``.
"""

import json
import os
import pathlib

import pytest

from repro.analysis.logs import churn_timeline, update_counts_by_node
from repro.analysis.report import (
    experiment_report,
    provenance_markdown,
    provenance_report,
)
from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.convergence import measure_event
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.builders import clique

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def check_golden(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing — regenerate with "
            "REPRO_REGEN_GOLDEN=1"
        )
    assert text == path.read_text(), (
        f"{name} drifted from its golden copy; if the change is "
        "intentional, regenerate with REPRO_REGEN_GOLDEN=1 and commit"
    )


@pytest.fixture(scope="module")
def run():
    config = ExperimentConfig(
        seed=3,
        timers=BGPTimers(mrai=1.0),
        controller=ControllerConfig(recompute_delay=0.2),
        spans=True,
    )
    exp = Experiment(clique(5), sdn_members={4, 5}, config=config).start()
    exp.wait_converged()
    prefix = exp.as_prefix(1)
    measurement = measure_event(exp, lambda: exp.withdraw(1, prefix))
    spans = exp.spans_snapshot()
    root_id = next(
        s["span_id"] for s in spans
        if s["parent_id"] is None and s["t_end"] >= measurement.t_event
    )
    return exp, measurement, spans, root_id


class TestReportGoldens:
    def test_experiment_report(self, run):
        exp, _, _, _ = run
        check_golden("experiment_report.txt", experiment_report(exp))

    def test_provenance_report(self, run):
        _, _, spans, root_id = run
        check_golden(
            "provenance_report.txt",
            provenance_report(spans, root_id=root_id, max_timeline=10),
        )

    def test_provenance_markdown(self, run):
        _, _, spans, root_id = run
        check_golden(
            "provenance_report.md",
            provenance_markdown(spans, root_id=root_id, max_timeline=10),
        )


class TestLogScanGoldens:
    def test_update_counts_by_node(self, run):
        exp, measurement, _, _ = run
        counts = update_counts_by_node(
            exp.net.trace, since=measurement.t_event
        )
        text = json.dumps(counts, indent=1, sort_keys=True) + "\n"
        check_golden("update_counts_by_node.json", text)

    def test_churn_timeline(self, run):
        exp, measurement, _, _ = run
        series = churn_timeline(
            exp.net.trace, bin_size=1.0, since=measurement.t_event
        )
        text = json.dumps(series, indent=1) + "\n"
        check_golden("churn_timeline.json", text)
