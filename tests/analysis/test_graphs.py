"""Unit tests for graph metrics."""

from repro.analysis.graphs import cut_links, summarize_topology
from repro.topology.builders import clique, line, ring, star


class TestSummarize:
    def test_clique_summary(self):
        summary = summarize_topology(clique(5))
        assert summary.nodes == 5
        assert summary.edges == 10
        assert summary.min_degree == summary.max_degree == 4
        assert summary.diameter == 1
        assert summary.avg_clustering == 1.0
        assert summary.connected

    def test_line_summary(self):
        summary = summarize_topology(line(5))
        assert summary.diameter == 4
        assert summary.min_degree == 1

    def test_describe_readable(self):
        text = summarize_topology(clique(3)).describe()
        assert "3 ASes" in text and "diameter 1" in text

    def test_disconnected_diameter_sentinel(self):
        topo = clique(3)
        topo.add_as(99)
        summary = summarize_topology(topo)
        assert not summary.connected
        assert summary.diameter == -1


class TestCutLinks:
    def test_clique_has_no_bridges(self):
        assert cut_links(clique(5)) == []

    def test_every_line_edge_is_a_bridge(self):
        assert cut_links(line(4)) == [(1, 2), (2, 3), (3, 4)]

    def test_ring_has_no_bridges(self):
        assert cut_links(ring(5)) == []

    def test_star_spokes_are_bridges(self):
        assert cut_links(star(4)) == [(1, 2), (1, 3), (1, 4)]
