"""Unit tests for log-analysis helpers."""

import pytest

from repro.analysis.logs import (
    churn_timeline,
    convergence_instant,
    interarrival_times,
    route_history,
    update_counts_by_node,
)
from repro.eventsim import Simulator, TraceLog


@pytest.fixture
def populated():
    sim = Simulator()
    trace = TraceLog(sim)
    events = [
        (0.5, "bgp.update.tx", "as1", {}),
        (0.6, "bgp.update.rx", "as2", {}),
        (1.2, "bgp.update.tx", "as2", {}),
        (1.3, "bgp.update.tx", "as2", {}),
        (2.8, "bgp.decision", "as2",
         {"prefix": "10.0.0.0/24", "old": "1", "new": "3 1"}),
        (3.0, "bgp.decision", "as2",
         {"prefix": "10.0.0.0/24", "old": "3 1", "new": None}),
        (3.0, "bgp.decision", "as3",
         {"prefix": "10.9.0.0/24", "old": None, "new": "1"}),
        (4.0, "fib.change", "as2", {}),
    ]
    for t, cat, node, data in events:
        sim.schedule(t, lambda c=cat, n=node, d=data: trace.record(c, n, **d))
    sim.run()
    return sim, trace


class TestUpdateCounts:
    def test_tx_counts(self, populated):
        _, trace = populated
        assert update_counts_by_node(trace) == {"as1": 1, "as2": 2}

    def test_rx_counts(self, populated):
        _, trace = populated
        assert update_counts_by_node(trace, direction="rx") == {"as2": 1}

    def test_since_filter(self, populated):
        _, trace = populated
        assert update_counts_by_node(trace, since=1.0) == {"as2": 2}

    def test_bad_direction(self, populated):
        _, trace = populated
        with pytest.raises(ValueError):
            update_counts_by_node(trace, direction="sideways")


class TestChurnTimeline:
    def test_bins(self, populated):
        _, trace = populated
        timeline = churn_timeline(trace, bin_size=1.0)
        assert timeline == [(0.0, 1), (1.0, 2)]

    def test_bin_size_validation(self, populated):
        _, trace = populated
        with pytest.raises(ValueError):
            churn_timeline(trace, bin_size=0)

    def test_category_override(self, populated):
        _, trace = populated
        timeline = churn_timeline(trace, bin_size=10.0, category="bgp.decision")
        assert timeline == [(0.0, 3)]


class TestRouteHistory:
    def test_history_for_prefix(self, populated):
        _, trace = populated
        changes = route_history(trace, "10.0.0.0/24")
        assert len(changes) == 2
        assert changes[0].new_path == "3 1"
        assert changes[1].is_loss

    def test_history_filtered_by_node(self, populated):
        _, trace = populated
        assert route_history(trace, "10.9.0.0/24", node="as2") == []
        gains = route_history(trace, "10.9.0.0/24", node="as3")
        assert len(gains) == 1 and gains[0].is_gain


class TestConvergenceInstant:
    def test_last_route_affecting(self, populated):
        _, trace = populated
        assert convergence_instant(trace, since=0.0) == 4.0

    def test_since_cutoff(self, populated):
        _, trace = populated
        assert convergence_instant(trace, since=5.0) is None


class TestInterarrival:
    def test_gaps(self, populated):
        _, trace = populated
        records = trace.filter(category="bgp.update.tx")
        gaps = interarrival_times(records)
        assert gaps == pytest.approx([0.7, 0.1])

    def test_empty(self):
        assert interarrival_times([]) == []
