"""Unit tests for the one-shot experiment report."""

import pytest

from repro.analysis.report import experiment_report
from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.builders import clique


@pytest.fixture(scope="module")
def hybrid():
    config = ExperimentConfig(
        seed=1,
        timers=BGPTimers(mrai=1.0),
        controller=ControllerConfig(recompute_delay=0.2),
    )
    exp = Experiment(clique(5), sdn_members={4, 5}, config=config).start()
    exp.add_host(1)
    exp.wait_converged()
    return exp


class TestReport:
    def test_contains_inventory(self, hybrid):
        report = experiment_report(hybrid)
        assert "legacy routers : 3" in report
        assert "SDN switches   : 2" in report
        assert "hosts          : 1" in report

    def test_contains_session_health(self, hybrid):
        report = experiment_report(hybrid)
        assert "established" in report
        assert "cluster speaker" in report

    def test_contains_update_counts(self, hybrid):
        report = experiment_report(hybrid)
        assert "updates sent" in report

    def test_contains_connectivity(self, hybrid):
        report = experiment_report(hybrid)
        assert "20/20 ordered AS pairs reachable" in report

    def test_contains_cluster_section(self, hybrid):
        report = experiment_report(hybrid)
        assert "recomputations" in report
        assert "sub-clusters" in report

    def test_broken_pairs_listed(self):
        config = ExperimentConfig(seed=2, timers=BGPTimers(mrai=0.5))
        from repro.topology.builders import line

        exp = Experiment(line(3), config=config).start()
        exp.fail_link(2, 3)
        exp.wait_converged()
        report = experiment_report(exp)
        assert "-/->" in report

    def test_pure_bgp_report_omits_cluster(self):
        config = ExperimentConfig(seed=2, timers=BGPTimers(mrai=0.5))
        exp = Experiment(clique(3), config=config).start()
        report = experiment_report(exp)
        assert "recomputations" not in report
