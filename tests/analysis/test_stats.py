"""Unit + property tests for boxplot stats and linear fitting."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import boxplot_stats, linear_fit


class TestBoxplotStats:
    def test_simple_five_numbers(self):
        stats = boxplot_stats([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.minimum == 1 and stats.maximum == 5
        assert stats.q1 == 2 and stats.q3 == 4

    def test_single_value(self):
        stats = boxplot_stats([7.0])
        assert stats.median == 7.0
        assert stats.stdev == 0.0
        assert stats.iqr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot_stats([])

    def test_outlier_detection(self):
        values = [10, 11, 12, 13, 14, 100]
        stats = boxplot_stats(values)
        assert 100 in stats.outliers
        assert stats.whisker_high < 100

    def test_no_outliers_whiskers_at_extremes(self):
        stats = boxplot_stats([1, 2, 3, 4, 5])
        assert stats.whisker_low == 1
        assert stats.whisker_high == 5

    def test_row_formatting(self):
        row = boxplot_stats([1, 2, 3]).row()
        assert "med=" in row and "q1=" in row


class TestLinearFit:
    def test_perfect_line(self):
        fit = linear_fit([0, 1, 2, 3], [10, 8, 6, 4])
        assert fit.slope == pytest.approx(-2.0)
        assert fit.intercept == pytest.approx(10.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.is_decreasing

    def test_predict(self):
        fit = linear_fit([0, 1], [0, 2])
        assert fit.predict(3) == pytest.approx(6.0)

    def test_noisy_line_r2_below_one(self):
        fit = linear_fit([0, 1, 2, 3, 4], [0, 2.2, 3.6, 6.5, 7.9])
        assert 0.9 < fit.r_squared < 1.0

    def test_flat_data(self):
        fit = linear_fit([0, 1, 2], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])


values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=50,
)


@given(values)
def test_five_numbers_are_ordered(vals):
    stats = boxplot_stats(vals)
    assert (
        stats.minimum <= stats.whisker_low <= stats.q1
        <= stats.median <= stats.q3 <= stats.whisker_high <= stats.maximum
    )


@given(values)
def test_mean_within_range(vals):
    stats = boxplot_stats(vals)
    assert stats.minimum - 1e-9 <= stats.mean <= stats.maximum + 1e-9


@given(values)
def test_outliers_lie_outside_whiskers(vals):
    stats = boxplot_stats(vals)
    for outlier in stats.outliers:
        assert outlier < stats.whisker_low or outlier > stats.whisker_high


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        min_size=2, max_size=30,
    ).filter(lambda pts: max(x for x, _ in pts) - min(x for x, _ in pts) > 1e-6)
)
def test_r_squared_bounded(points):
    xs, ys = zip(*points)
    fit = linear_fit(xs, ys)
    assert fit.r_squared <= 1.0 + 1e-9
