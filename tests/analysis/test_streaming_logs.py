"""Streaming analysis subscribers vs their scan-based twins."""

import pytest

from repro.analysis.logs import (
    ChurnTracker,
    NodeUpdateCounter,
    churn_timeline,
    update_counts_by_node,
)
from repro.analysis.stats import OnlineStats
from repro.eventsim import Simulator, TraceLog


@pytest.fixture
def busy_trace():
    sim = Simulator()
    trace = TraceLog(sim)
    events = [
        (0.5, "bgp.update.tx", "as1"),
        (0.6, "bgp.update.rx", "as2"),
        (1.2, "bgp.update.tx", "as2"),
        (1.3, "bgp.update.tx", "as2"),
        (2.8, "bgp.update.tx", "as3"),
        (4.0, "bgp.update.rx", "as1"),
        (7.5, "bgp.update.tx", "as1"),
    ]
    for t, cat, node in events:
        sim.schedule(t, lambda c=cat, n=node: trace.record(c, n))
    return sim, trace


class TestChurnTracker:
    def test_matches_scan_timeline(self, busy_trace):
        sim, trace = busy_trace
        tracker = ChurnTracker(trace.bus, bin_size=1.0)
        sim.run()
        assert tracker.timeline() == churn_timeline(trace, bin_size=1.0)

    def test_matches_scan_with_offset_and_bins(self, busy_trace):
        sim, trace = busy_trace
        tracker = ChurnTracker(trace.bus, bin_size=2.0, since=0.5)
        sim.run()
        assert tracker.timeline() == churn_timeline(
            trace, bin_size=2.0, since=0.5
        )

    def test_until_truncates(self, busy_trace):
        sim, trace = busy_trace
        tracker = ChurnTracker(trace.bus, bin_size=1.0)
        sim.run()
        assert tracker.timeline(until=2.0) == churn_timeline(
            trace, bin_size=1.0, until=2.0
        )

    def test_invalid_bin_size(self, busy_trace):
        _, trace = busy_trace
        with pytest.raises(ValueError):
            ChurnTracker(trace.bus, bin_size=0)

    def test_detach_stops_binning(self, busy_trace):
        sim, trace = busy_trace
        tracker = ChurnTracker(trace.bus)
        tracker.detach()
        sim.run()
        assert tracker.timeline() == []


class TestNodeUpdateCounter:
    def test_matches_scan_counts_tx(self, busy_trace):
        sim, trace = busy_trace
        counter = NodeUpdateCounter(trace.bus, direction="tx")
        sim.run()
        assert counter.counts == update_counts_by_node(trace, direction="tx")

    def test_matches_scan_counts_rx(self, busy_trace):
        sim, trace = busy_trace
        counter = NodeUpdateCounter(trace.bus, direction="rx")
        sim.run()
        assert counter.counts == update_counts_by_node(trace, direction="rx")

    def test_since_filters(self, busy_trace):
        sim, trace = busy_trace
        counter = NodeUpdateCounter(trace.bus, direction="tx", since=1.0)
        sim.run()
        assert counter.counts == update_counts_by_node(
            trace, direction="tx", since=1.0
        )

    def test_invalid_direction(self, busy_trace):
        _, trace = busy_trace
        with pytest.raises(ValueError):
            NodeUpdateCounter(trace.bus, direction="both")

    def test_works_with_capture_off(self):
        """The whole point: counts stay correct with zero retained records."""
        sim = Simulator()
        trace = TraceLog(sim, capture=False)
        counter = NodeUpdateCounter(trace.bus, direction="tx")
        sim.schedule(1.0, lambda: trace.record("bgp.update.tx", "as1"))
        sim.run()
        assert trace.records == []
        assert counter.counts == {"as1": 1}


class TestOnlineStats:
    def test_matches_numpy_moments(self):
        import numpy as np

        values = [3.0, 1.5, 4.25, 0.5, 9.0, 2.0]
        stats = OnlineStats()
        stats.extend(values)
        assert stats.n == len(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.stdev == pytest.approx(np.std(values, ddof=1))
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    def test_single_value(self):
        stats = OnlineStats()
        stats.add(5.0)
        assert stats.variance == 0.0
        assert stats.mean == 5.0

    def test_to_dict_empty(self):
        d = OnlineStats().to_dict()
        assert d == {"n": 0, "mean": 0.0, "stdev": 0.0,
                     "min": None, "max": None}

    def test_numerically_stable_around_large_offset(self):
        # naive sum-of-squares loses all precision here; Welford doesn't
        stats = OnlineStats()
        stats.extend([1e9 + v for v in (0.0, 1.0, 2.0)])
        assert stats.variance == pytest.approx(1.0)
