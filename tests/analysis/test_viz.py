"""Unit tests for visualization output formats."""

from repro.analysis.logs import RouteChange
from repro.analysis.stats import boxplot_stats
from repro.analysis.viz import (
    ascii_boxplot_chart,
    churn_sparkline,
    route_change_timeline,
    topology_dot,
)
from repro.topology.builders import clique, star


class TestBoxplotChart:
    def rows(self):
        return [
            ("0/16", boxplot_stats([340, 350, 360, 370])),
            ("8/16", boxplot_stats([150, 160, 170, 180])),
            ("15/16", boxplot_stats([0.4, 0.5, 0.6, 0.7])),
        ]

    def test_renders_all_rows(self):
        chart = ascii_boxplot_chart(self.rows(), title="Fig 2")
        assert "Fig 2" in chart
        for label in ("0/16", "8/16", "15/16"):
            assert label in chart

    def test_contains_box_and_median_glyphs(self):
        chart = ascii_boxplot_chart(self.rows())
        assert "#" in chart and "|" in chart

    def test_median_annotated(self):
        chart = ascii_boxplot_chart(self.rows())
        assert "med=355.0s" in chart

    def test_empty_rows_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ascii_boxplot_chart([])

    def test_degenerate_identical_values(self):
        chart = ascii_boxplot_chart([("x", boxplot_stats([5.0, 5.0]))])
        assert "med=5.0" in chart


class TestRouteTimeline:
    def changes(self):
        return [
            RouteChange(10.0, "as2", "10.0.0.0/24", "1", "3 1"),
            RouteChange(12.0, "as2", "10.0.0.0/24", "3 1", None),
            RouteChange(11.0, "as3", "10.0.0.0/24", "1", None),
        ]

    def test_sorted_chronologically(self):
        timeline = route_change_timeline(self.changes(), t0=10.0)
        lines = timeline.splitlines()[1:]
        assert "as2" in lines[0] and "as3" in lines[1]

    def test_none_rendered_readably(self):
        timeline = route_change_timeline(self.changes())
        assert "(none)" in timeline

    def test_truncation(self):
        many = [
            RouteChange(float(i), "as1", "p", None, str(i)) for i in range(50)
        ]
        timeline = route_change_timeline(many, max_rows=10)
        assert "40 more changes" in timeline


class TestTopologyDot:
    def test_sdn_members_highlighted(self):
        dot = topology_dot(clique(4), sdn_members=[3, 4])
        assert dot.count("shape=box") == 2
        assert dot.count("shape=ellipse") == 2

    def test_edges_present(self):
        dot = topology_dot(clique(4))
        assert dot.count(" -- ") == 6

    def test_customer_links_directed(self):
        dot = topology_dot(star(3))
        assert "arrowhead" in dot

    def test_valid_graphviz_structure(self):
        dot = topology_dot(clique(3))
        assert dot.startswith("graph") and dot.rstrip().endswith("}")


class TestSparkline:
    def test_empty(self):
        assert churn_sparkline([]) == "(no updates)"

    def test_peak_annotated(self):
        line = churn_sparkline([(0.0, 5), (1.0, 10), (2.0, 1)])
        assert "peak=" in line

    def test_single_bin(self):
        line = churn_sparkline([(3.0, 4)])
        assert "t=3.0s" in line
