"""Golden-file tests for the SVG chart helpers and graph summaries.

The chart builders are pure functions of their inputs, so the exact SVG
text is pinned; the graph summaries pin the plot-ready structural data
of the stock topologies.  Regenerate intentional changes with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/analysis/test_viz_golden.py
"""

import json

from repro.analysis.graphs import cut_links, summarize_topology
from repro.analysis.viz import SVG_PALETTE, svg_bar_chart, svg_line_chart
from repro.topology.builders import barabasi_albert, clique, line, ring, star

from .test_golden import check_golden

#: two fig2-flavoured series: convergence medians vs SDN fraction.
LINE_SERIES = [
    ("run A", [(0.0, 96.1), (0.25, 71.9), (0.5, 47.6), (0.75, 24.0),
               (1.0, 3.4)]),
    ("run B", [(0.0, 95.8), (0.5, 48.1), (1.0, 3.2)]),
]

BARS = [("#1", 0.0), ("#2", 0.5), ("#3", 1.0), ("#4", 0.875)]


class TestSvgGoldens:
    def test_line_chart(self):
        check_golden(
            "line_chart.svg",
            svg_line_chart(
                LINE_SERIES,
                title="median convergence vs fraction",
                x_label="SDN fraction",
                y_label="seconds",
            ),
        )

    def test_bar_chart(self):
        check_golden(
            "bar_chart.svg",
            svg_bar_chart(
                BARS, title="cache hit rate", y_label="hit rate"
            ),
        )

    def test_empty_series_placeholder(self):
        svg = svg_line_chart([])
        assert "(no data)" in svg
        assert svg.startswith("<svg") and svg.endswith("</svg>")

    def test_labels_are_escaped(self):
        svg = svg_line_chart(
            [("<evil> & co", [(0.0, 1.0), (1.0, 2.0)])],
            title='a "quoted" <title>',
        )
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg
        assert "&lt;title&gt;" in svg

    def test_every_series_gets_a_distinct_palette_color(self):
        series = [
            (f"s{i}", [(0.0, float(i)), (1.0, float(i + 1))])
            for i in range(len(SVG_PALETTE))
        ]
        svg = svg_line_chart(series)
        for color in SVG_PALETTE:
            assert color in svg

    def test_bar_values_annotated(self):
        svg = svg_bar_chart([("x", 0.875)])
        assert "0.875" in svg


class TestGraphGoldens:
    def test_stock_topology_summaries(self):
        payload = {}
        for name, topo in (
            ("clique16", clique(16)),
            ("ring8", ring(8)),
            ("line6", line(6)),
            ("star9", star(9)),
            ("ba16", barabasi_albert(16, 2, seed=0)),
        ):
            summary = summarize_topology(topo)
            payload[name] = {
                "nodes": summary.nodes,
                "edges": summary.edges,
                "degree": [
                    summary.min_degree,
                    round(summary.mean_degree, 4),
                    summary.max_degree,
                ],
                "diameter": summary.diameter,
                "clustering": round(summary.avg_clustering, 4),
                "connected": summary.connected,
                "cut_links": cut_links(topo),
                "describe": summary.describe(),
            }
        check_golden(
            "topology_summaries.json",
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
        )
