"""Unit + property tests for AS paths and path attributes."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.attrs import AsPath, Origin, PathAttributes


class TestAsPath:
    def test_empty_path(self):
        path = AsPath()
        assert path.length == 0
        assert path.origin_as is None
        assert path.first_as is None
        assert str(path) == "(empty)"

    def test_of_constructor(self):
        assert AsPath.of(3, 2, 1).asns == (3, 2, 1)

    def test_prepend_returns_new_path(self):
        base = AsPath.of(1)
        longer = base.prepend(2)
        assert longer.asns == (2, 1)
        assert base.asns == (1,)  # immutable

    def test_prepend_count(self):
        assert AsPath.of(1).prepend(9, count=3).asns == (9, 9, 9, 1)

    def test_prepend_count_must_be_positive(self):
        with pytest.raises(ValueError):
            AsPath.of(1).prepend(9, count=0)

    def test_prepend_sequence(self):
        assert AsPath.of(1).prepend_sequence((4, 3, 2)).asns == (4, 3, 2, 1)

    def test_origin_and_first(self):
        path = AsPath.of(3, 2, 1)
        assert path.origin_as == 1
        assert path.first_as == 3

    def test_contains(self):
        path = AsPath.of(3, 2, 1)
        assert path.contains(2)
        assert not path.contains(9)

    def test_iteration_and_len(self):
        path = AsPath.of(5, 4)
        assert list(path) == [5, 4]
        assert len(path) == 2

    def test_equality_and_hash(self):
        assert AsPath.of(1, 2) == AsPath.of(1, 2)
        assert len({AsPath.of(1), AsPath.of(1)}) == 1


class TestOrigin:
    def test_preference_order(self):
        assert Origin.IGP < Origin.EGP < Origin.INCOMPLETE


class TestPathAttributes:
    def test_defaults(self):
        attrs = PathAttributes()
        assert attrs.local_pref == 100
        assert attrs.origin is Origin.IGP
        assert attrs.communities == ()

    def test_with_path_preserves_other_fields(self):
        attrs = PathAttributes(local_pref=200, med=5, communities=("x",))
        updated = attrs.with_path(AsPath.of(1))
        assert updated.as_path == AsPath.of(1)
        assert updated.local_pref == 200
        assert updated.med == 5
        assert updated.communities == ("x",)

    def test_with_local_pref(self):
        assert PathAttributes().with_local_pref(50).local_pref == 50

    def test_with_communities_and_has_community(self):
        attrs = PathAttributes().with_communities(["a", "b"])
        assert attrs.has_community("a")
        assert not attrs.has_community("c")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PathAttributes().local_pref = 1  # type: ignore[misc]


asns = st.integers(min_value=1, max_value=65535)


@given(st.lists(asns, max_size=10), asns)
def test_prepend_grows_length_by_one(asn_list, new_asn):
    path = AsPath.from_iterable(asn_list)
    assert path.prepend(new_asn).length == path.length + 1


@given(st.lists(asns, max_size=10), asns)
def test_prepended_as_is_first(asn_list, new_asn):
    assert AsPath.from_iterable(asn_list).prepend(new_asn).first_as == new_asn


@given(st.lists(asns, min_size=1, max_size=10))
def test_origin_as_is_last_element(asn_list):
    assert AsPath.from_iterable(asn_list).origin_as == asn_list[-1]


@given(st.lists(asns, max_size=10), st.lists(asns, max_size=10))
def test_prepend_sequence_concatenates(head, tail):
    combined = AsPath.from_iterable(tail).prepend_sequence(head)
    assert list(combined) == head + tail
