"""Unit tests for the route collector."""

from repro.bgp.collector import RouteCollector
from repro.bgp.router import BGPRouter
from repro.bgp.session import BGPTimers
from repro.net.addr import Prefix

PFX = Prefix.parse("192.168.0.0/24")


def build(net, n=2):
    timers = BGPTimers(mrai=0.5)
    routers = []
    for i in range(1, n + 1):
        router = net.add_node(
            BGPRouter(net.sim, net.trace, f"as{i}", asn=i, timers=timers)
        )
        routers.append(router)
    for i in range(n):
        for j in range(i + 1, n):
            link = net.add_link(routers[i], routers[j])
            routers[i].add_peer(link)
            routers[j].add_peer(link)
    collector = net.add_node(RouteCollector(net.sim, net.trace))
    for router in routers:
        link = net.add_link(router, collector, kind="collector")
        router.add_peer(link, timers=BGPTimers(mrai=0.0))
        collector.add_peer(link)
    for node in routers + [collector]:
        node.start()
    net.sim.run_until_settled()
    return routers, collector


class TestCollection:
    def test_feed_records_announcements(self, net):
        (a, b), collector = build(net)
        a.originate(PFX)
        net.sim.run_until_settled()
        touched = collector.updates_for(PFX)
        assert touched
        assert any(u.peer_name == "as1" for u in touched)

    def test_feed_records_withdrawals(self, net):
        (a, b), collector = build(net)
        a.originate(PFX)
        net.sim.run_until_settled()
        a.withdraw(PFX)
        net.sim.run_until_settled()
        assert any(u.is_withdrawal for u in collector.updates_for(PFX))

    def test_feed_timestamps_monotonic(self, net):
        (a, b), collector = build(net)
        a.originate(PFX)
        net.sim.run_until_settled()
        times = [u.time for u in collector.feed]
        assert times == sorted(times)

    def test_updates_since(self, net):
        (a, b), collector = build(net)
        a.originate(PFX)
        net.sim.run_until_settled()
        cut = net.sim.now
        b.originate(Prefix.parse("192.168.1.0/24"))
        net.sim.run_until_settled()
        later = collector.updates_since(cut)
        assert later and all(u.time >= cut for u in later)

    def test_last_update_time(self, net):
        (a, b), collector = build(net)
        assert collector.last_update_time(net.sim.now + 1) is None
        a.originate(PFX)
        net.sim.run_until_settled()
        assert collector.last_update_time() is not None


class TestSilence:
    def test_collector_never_announces(self, net):
        (a, b), collector = build(net)
        a.originate(PFX)
        net.sim.run_until_settled()
        # no router ever hears anything from the collector
        for router in (a, b):
            for session in router.sessions.values():
                if session.peer_name == "collector":
                    assert len(router.adj_rib_in(session)) == 0

    def test_collector_loc_rib_learns_routes(self, net):
        (a, b), collector = build(net)
        a.originate(PFX)
        net.sim.run_until_settled()
        assert collector.loc_rib.get(PFX) is not None
