"""RouteIndex + DecisionDriver units: the compact decision machinery.

The experiment-level guarantees live in
``tests/experiments/test_compact_differential.py``; these tests pin the
two building blocks in isolation — the prefix-major index stays exactly
in sync with its Adj-RIB-In tables, and the dirty-set driver runs each
touched prefix once, in first-touch order.
"""

from repro.bgp.attrs import AsPath, PathAttributes
from repro.bgp.decision import (
    DecisionConfig,
    DecisionDriver,
    full_scan_best,
    verify_loc_rib,
)
from repro.bgp.rib import AdjRibIn, LocRib, Route, RouteIndex
from repro.net.addr import Prefix

P1 = Prefix.parse("10.0.1.0/24")
P2 = Prefix.parse("10.0.2.0/24")


def route(prefix, *asns, peer_asn=None):
    path = AsPath.of(*asns)
    return Route(prefix, PathAttributes(as_path=path),
                 peer_asn=peer_asn if peer_asn is not None else asns[0])


class TestRouteIndex:
    def test_mirrors_installs_and_withdrawals(self):
        index = RouteIndex()
        rib = AdjRibIn(2, "AS2", link_id=7, index=index)
        rib.update(route(P1, 2, 1))
        assert set(index.get(P1)) == {7}
        assert index.get(P1)[7].prefix == P1
        rib.withdraw(P1)
        assert index.get(P1) == {} and len(index) == 0

    def test_replacement_overwrites_in_place(self):
        index = RouteIndex()
        rib = AdjRibIn(2, "AS2", link_id=7, index=index)
        rib.update(route(P1, 2, 1))
        rib.update(route(P1, 2, 3, 1))
        assert len(index.get(P1)) == 1
        assert index.get(P1)[7].attrs.as_path == AsPath.of(2, 3, 1)

    def test_clear_empties_the_index(self):
        index = RouteIndex()
        rib = AdjRibIn(2, "AS2", link_id=7, index=index)
        rib.update(route(P1, 2, 1))
        rib.update(route(P2, 2, 1))
        rib.clear()
        assert len(index) == 0

    def test_multiple_tables_share_one_index(self):
        index = RouteIndex()
        rib_a = AdjRibIn(2, "AS2", link_id=1, index=index)
        rib_b = AdjRibIn(3, "AS3", link_id=2, index=index)
        rib_a.update(route(P1, 2, 1))
        rib_b.update(route(P1, 3, 1))
        assert set(index.get(P1)) == {1, 2}
        rib_a.withdraw(P1)
        assert set(index.get(P1)) == {2}

    def test_drop_link_reports_affected_prefixes(self):
        index = RouteIndex()
        rib = AdjRibIn(2, "AS2", link_id=9, index=index)
        rib.update(route(P1, 2, 1))
        rib.update(route(P2, 2, 1))
        assert sorted(index.drop_link(9), key=str) == sorted(
            [P1, P2], key=str
        )
        assert len(index) == 0

    def test_unindexed_table_is_untouched_legacy(self):
        rib = AdjRibIn(2, "AS2")
        rib.update(route(P1, 2, 1))
        assert rib.get(P1) is not None


class TestDecisionDriver:
    def test_drain_returns_first_touch_order_once(self):
        driver = DecisionDriver()
        driver.mark(P2)
        driver.mark(P1)
        driver.mark(P2)  # duplicate: withdraw + re-announce in one UPDATE
        assert len(driver) == 2
        assert driver.drain() == [P2, P1]
        assert driver.drain() == []

    def test_driver_refills_after_drain(self):
        driver = DecisionDriver()
        driver.mark(P1)
        driver.drain()
        driver.mark(P1)
        assert driver.drain() == [P1]


class TestFullScanOracle:
    def _candidates(self, table):
        return lambda prefix: table.get(prefix, [])

    def test_full_scan_best_picks_winner_per_prefix(self):
        table = {
            P1: [route(P1, 2, 9, 1), route(P1, 3, 1)],
            P2: [route(P2, 4, 1)],
        }
        best = full_scan_best(
            self._candidates(table), [P1, P2], DecisionConfig()
        )
        assert best[P1].attrs.as_path == AsPath.of(3, 1)
        assert best[P2].attrs.as_path == AsPath.of(4, 1)

    def test_verify_loc_rib_accepts_agreement(self):
        table = {P1: [route(P1, 3, 1)]}
        loc = LocRib()
        loc.set_best(table[P1][0])
        assert verify_loc_rib(
            loc, self._candidates(table), [P1], DecisionConfig()
        ) == []

    def test_verify_loc_rib_flags_stale_winner(self):
        table = {P1: [route(P1, 3, 1), route(P1, 2, 9, 1)]}
        loc = LocRib()
        loc.set_best(table[P1][1])  # longer path: wrong
        problems = verify_loc_rib(
            loc, self._candidates(table), [P1], DecisionConfig()
        )
        assert problems and str(P1) in problems[0]

    def test_verify_loc_rib_flags_missing_and_ghost_entries(self):
        table = {P1: [route(P1, 3, 1)]}
        empty = LocRib()
        assert verify_loc_rib(
            empty, self._candidates(table), [P1], DecisionConfig()
        )
        ghost = LocRib()
        ghost.set_best(route(P2, 4, 1))
        assert verify_loc_rib(
            ghost, self._candidates({}), [P2], DecisionConfig()
        )
