"""Unit + integration tests for route-flap damping (RFC 2439)."""

import pytest

from repro.bgp.damping import DampingConfig, RouteDamper
from repro.bgp.router import BGPRouter
from repro.bgp.session import BGPTimers
from repro.net.addr import Prefix

PFX = Prefix.parse("192.168.0.0/24")
KEY = (1, PFX)

#: fast config for tests: one withdrawal flap suppresses nothing, two do.
FAST = DampingConfig(
    half_life=10.0,
    reuse_threshold=800.0,
    suppress_threshold=1500.0,
    withdrawal_penalty=1000.0,
    attribute_change_penalty=500.0,
    max_suppress_time=60.0,
)


class TestDampingConfig:
    def test_default_parameters_are_router_like(self):
        config = DampingConfig()
        assert config.half_life == 900.0
        assert config.suppress_threshold > config.reuse_threshold

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            DampingConfig(half_life=0)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            DampingConfig(reuse_threshold=3000, suppress_threshold=2000)

    def test_max_penalty_consistent(self):
        config = DampingConfig()
        # decaying from max_penalty for max_suppress_time lands on reuse
        import math

        decayed = config.max_penalty * math.pow(
            2.0, -config.max_suppress_time / config.half_life
        )
        assert decayed == pytest.approx(config.reuse_threshold)


class TestRouteDamper:
    def test_single_flap_below_threshold(self, sim):
        damper = RouteDamper(sim, FAST, lambda key: None)
        assert damper.record_flap(KEY) is False
        assert not damper.is_suppressed(KEY)

    def test_repeated_flaps_suppress(self, sim):
        damper = RouteDamper(sim, FAST, lambda key: None)
        damper.record_flap(KEY)
        assert damper.record_flap(KEY) is True
        assert damper.is_suppressed(KEY)
        assert damper.suppressions == 1

    def test_penalty_decays_exponentially(self, sim):
        damper = RouteDamper(sim, FAST, lambda key: None)
        damper.record_flap(KEY)  # penalty 1000
        sim.schedule(10.0, lambda: None)  # one half-life
        sim.run()
        assert damper.penalty_of(KEY) == pytest.approx(500.0, rel=1e-6)

    def test_reuse_callback_fires_after_decay(self, sim):
        released = []
        damper = RouteDamper(sim, FAST, released.append)
        damper.record_flap(KEY)
        damper.record_flap(KEY)  # ~2000 -> suppressed
        sim.run()
        assert released == [KEY]
        assert not damper.is_suppressed(KEY)
        assert damper.reuses == 1
        # released roughly when penalty crossed reuse (2000 -> 800):
        # t = 10 * log2(2000/800) ~ 13.2s
        assert 12.0 < sim.now < 16.0

    def test_flap_while_suppressed_extends(self, sim):
        released = []
        damper = RouteDamper(sim, FAST, released.append)
        damper.record_flap(KEY)
        damper.record_flap(KEY)
        sim.run(until=5.0)
        damper.record_flap(KEY)  # re-penalize mid-suppression
        sim.run()
        assert released == [KEY]
        assert sim.now > 15.0

    def test_penalty_capped_at_max(self, sim):
        damper = RouteDamper(sim, FAST, lambda key: None)
        for _ in range(50):
            damper.record_flap(KEY)
        assert damper.penalty_of(KEY) <= FAST.max_penalty + 1e-9

    def test_attribute_change_half_penalty(self, sim):
        damper = RouteDamper(sim, FAST, lambda key: None)
        damper.record_flap(KEY, kind="attribute_change")
        assert damper.penalty_of(KEY) == pytest.approx(500.0)

    def test_clear_peer(self, sim):
        damper = RouteDamper(sim, FAST, lambda key: None)
        damper.record_flap(KEY)
        damper.record_flap((2, PFX))
        damper.clear_peer(1)
        assert damper.penalty_of(KEY) == 0.0
        assert damper.penalty_of((2, PFX)) > 0.0


def make_damped_pair(net):
    timers = BGPTimers(mrai=0.5)
    a = net.add_node(
        BGPRouter(net.sim, net.trace, "a", asn=1, timers=timers)
    )
    b = net.add_node(
        BGPRouter(net.sim, net.trace, "b", asn=2, timers=timers, damping=FAST)
    )
    link = net.add_link(a, b, latency=0.01)
    a.add_peer(link)
    b.add_peer(link)
    a.start()
    b.start()
    net.sim.run_until_settled()
    return a, b


class TestRouterIntegration:
    def flap(self, net, a, times):
        for _ in range(times):
            a.originate(PFX)
            net.sim.run(until=net.sim.now + 1.0)
            a.withdraw(PFX)
            net.sim.run(until=net.sim.now + 1.0)

    def test_stable_route_unaffected(self, net):
        a, b = make_damped_pair(net)
        a.originate(PFX)
        net.sim.run_until_settled()
        assert b.loc_rib.get(PFX) is not None

    def test_flapping_route_gets_suppressed(self, net):
        a, b = make_damped_pair(net)
        self.flap(net, a, times=2)
        a.originate(PFX)
        net.sim.run(until=net.sim.now + 1.0)
        # the route is present in Adj-RIB-In but suppressed from Loc-RIB
        assert b.loc_rib.get(PFX) is None
        assert net.trace.count("bgp.damping.suppress") >= 1

    def test_suppressed_route_reused_after_decay(self, net):
        a, b = make_damped_pair(net)
        self.flap(net, a, times=2)
        a.originate(PFX)
        net.sim.run_until_settled()  # waits out the reuse timer
        assert b.loc_rib.get(PFX) is not None
        assert net.trace.count("bgp.damping.reuse") >= 1

    def test_session_reset_clears_damping(self, net):
        a, b = make_damped_pair(net)
        self.flap(net, a, times=2)
        link = net.link_between("a", "b")
        link.fail()
        net.sim.run_until_settled()
        link.restore()
        a.originate(PFX)
        net.sim.run_until_settled()
        assert b.loc_rib.get(PFX) is not None
