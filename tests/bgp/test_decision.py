"""Unit + property tests for the BGP decision process."""

from hypothesis import given, strategies as st

from repro.bgp.attrs import AsPath, Origin, PathAttributes
from repro.bgp.decision import (
    DecisionConfig,
    best_route,
    rank_routes,
    route_sort_key,
)
from repro.bgp.rib import Route
from repro.net.addr import Prefix

PFX = Prefix.parse("10.0.0.0/24")


def route(
    path=(1,),
    local_pref=100,
    origin=Origin.IGP,
    med=0,
    peer=1,
    peer_name=None,
):
    return Route(
        prefix=PFX,
        attrs=PathAttributes(
            as_path=AsPath.from_iterable(path),
            local_pref=local_pref,
            origin=origin,
            med=med,
        ),
        peer_asn=peer,
        peer_name=peer_name if peer_name is not None else f"as{peer}",
    )


class TestDecisionSteps:
    def test_empty_candidates(self):
        assert best_route([]) is None

    def test_higher_local_pref_wins(self):
        lo = route(path=(1,), local_pref=50)
        hi = route(path=(9, 8, 7, 1), local_pref=200, peer=2)
        assert best_route([lo, hi]) is hi

    def test_local_route_beats_learned_at_equal_pref(self):
        local = Route(prefix=PFX, attrs=PathAttributes(), peer_asn=0)
        learned = route(path=(1,))
        assert best_route([learned, local]) is local

    def test_shorter_as_path_wins(self):
        short = route(path=(1,), peer=9)
        long = route(path=(2, 1), peer=1)
        assert best_route([long, short]) is short

    def test_lower_origin_wins(self):
        igp = route(origin=Origin.IGP, peer=9)
        egp = route(origin=Origin.EGP, peer=1)
        incomplete = route(origin=Origin.INCOMPLETE, peer=2)
        assert best_route([incomplete, egp, igp]) is igp

    def test_lower_med_wins(self):
        high = route(med=50, peer=1)
        low = route(med=10, peer=2)
        assert best_route([high, low]) is low

    def test_med_ignored_when_disabled(self):
        config = DecisionConfig(compare_med=False)
        high_med_low_asn = route(med=50, peer=1)
        low_med_high_asn = route(med=10, peer=2)
        assert best_route([low_med_high_asn, high_med_low_asn], config) is high_med_low_asn

    def test_lower_peer_asn_breaks_tie(self):
        a = route(peer=5)
        b = route(peer=3)
        assert best_route([a, b]) is b

    def test_peer_name_is_final_tiebreak(self):
        a = route(peer=1, peer_name="b")
        b = route(peer=1, peer_name="a")
        assert best_route([a, b]) is b


class TestRanking:
    def test_rank_routes_best_first(self):
        worst = route(path=(3, 2, 1), peer=3)
        mid = route(path=(2, 1), peer=2)
        best = route(path=(1,), peer=1)
        ranked = rank_routes([worst, best, mid])
        assert ranked == [best, mid, worst]

    def test_rank_is_total_order(self):
        routes = [route(peer=i, path=(i,)) for i in range(1, 6)]
        ranked = rank_routes(routes)
        keys = [route_sort_key(r) for r in ranked]
        assert keys == sorted(keys)


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
route_strategy = st.builds(
    route,
    path=st.lists(
        st.integers(min_value=1, max_value=100), min_size=1, max_size=6
    ).map(tuple),
    local_pref=st.integers(min_value=0, max_value=300),
    origin=st.sampled_from(list(Origin)),
    med=st.integers(min_value=0, max_value=100),
    peer=st.integers(min_value=1, max_value=100),
)


@given(st.lists(route_strategy, min_size=1, max_size=12))
def test_best_is_minimum_of_sort_key(routes):
    best = best_route(routes)
    assert route_sort_key(best) == min(route_sort_key(r) for r in routes)


@given(st.lists(route_strategy, min_size=1, max_size=12))
def test_best_has_max_local_pref(routes):
    best = best_route(routes)
    assert best.attrs.local_pref == max(r.attrs.local_pref for r in routes)


@given(st.lists(route_strategy, min_size=1, max_size=12))
def test_best_is_order_independent(routes):
    forward = best_route(routes)
    backward = best_route(list(reversed(routes)))
    assert route_sort_key(forward) == route_sort_key(backward)


@given(st.lists(route_strategy, min_size=1, max_size=12))
def test_ranking_contains_all_candidates(routes):
    assert len(rank_routes(routes)) == len(routes)
