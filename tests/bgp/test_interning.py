"""Interning + memory-shape tests for the compact route machinery.

The scale refactor (docs/scaling.md) rests on three representation
guarantees, each pinned here:

- equal path attributes are the *same object* (one weak intern pool per
  type, drained automatically when routes die);
- AS-path loop detection is O(1) per check via a cached member set —
  the pre-refactor implementation scanned the tuple per call, which is
  quadratic over a long line topology's convergence;
- every hot per-route / per-message object is slotted, so a 5k-AS run
  is not paying a ``__dict__`` per route, update, and heap event.
"""

import gc
import pickle
import sys
import time

import pytest

from repro.bgp.attrs import AsPath, Origin, PathAttributes, intern_stats
from repro.bgp.messages import BGPKeepalive, BGPOpen, BGPUpdate
from repro.bgp.rib import Route
from repro.eventsim.core import Event
from repro.net.addr import IPv4Address, Prefix
from repro.net.messages import Packet


class TestAsPathInterning:
    def test_equal_construction_is_identical(self):
        assert AsPath.of(3, 2, 1) is AsPath.of(3, 2, 1)
        assert AsPath.from_iterable([3, 2, 1]) is AsPath.of(3, 2, 1)
        assert AsPath() is AsPath.of()

    def test_derived_paths_intern_too(self):
        assert AsPath.of(2, 1).prepend(3) is AsPath.of(3, 2, 1)
        assert AsPath.of(1).prepend_sequence((3, 2)) is AsPath.of(3, 2, 1)

    def test_distinct_paths_are_distinct(self):
        assert AsPath.of(1, 2) is not AsPath.of(2, 1)

    def test_pool_is_weak(self):
        probe = (91001, 91002, 91003)
        before = intern_stats()["as_paths"]
        path = AsPath.from_iterable(probe)
        assert intern_stats()["as_paths"] == before + 1
        del path
        gc.collect()
        assert intern_stats()["as_paths"] == before

    def test_members_cached_and_correct(self):
        path = AsPath.of(5, 4, 3)
        assert path.members == frozenset({3, 4, 5})
        # The set is computed once and reused — identity, not equality.
        assert path.members is path.members
        assert path.contains(4)
        assert not path.contains(99)

    def test_pickle_reinterns(self):
        path = AsPath.of(7, 8, 9)
        assert pickle.loads(pickle.dumps(path)) is path

    def test_frozen(self):
        with pytest.raises(AttributeError):
            AsPath.of(1).asns = (2,)  # type: ignore[misc]
        with pytest.raises(AttributeError):
            del AsPath.of(1).asns  # type: ignore[misc]

    def test_foreign_equality_degrades_gracefully(self):
        assert AsPath.of(1) != (1,)
        assert not AsPath.of(1) == "AS1"

    def test_long_path_membership_is_constant_time(self):
        # Regression for the loop-detection hot path: ``contains`` used
        # to scan the asns tuple per call.  On this 20k-hop path, 20k
        # checks under the old code are ~4e8 tuple steps (minutes);
        # with the cached member set they are 20k set probes.
        long_path = AsPath.from_iterable(range(1, 20001))
        assert long_path.contains(20000)  # prime the member cache
        start = time.perf_counter()
        for _ in range(20000):
            assert long_path.contains(10000)
            assert not long_path.contains(30000)
        assert time.perf_counter() - start < 1.0


class TestPathAttributesInterning:
    def test_equal_construction_is_identical(self):
        a = PathAttributes(as_path=AsPath.of(1, 2), local_pref=200)
        b = PathAttributes(as_path=AsPath.of(1, 2), local_pref=200)
        assert a is b

    def test_derived_attributes_intern_too(self):
        base = PathAttributes(local_pref=150)
        assert base.with_path(AsPath.of(9)) is PathAttributes(
            as_path=AsPath.of(9), local_pref=150
        )
        assert base.with_local_pref(150) is base

    def test_communities_normalized_to_tuple(self):
        assert PathAttributes(communities=["a", "b"]) is PathAttributes(
            communities=("a", "b")
        )

    def test_origin_normalized_to_enum(self):
        assert PathAttributes(origin=1).origin is Origin.EGP

    def test_pool_is_weak(self):
        before = intern_stats()["path_attributes"]
        attrs = PathAttributes(med=91234)
        assert intern_stats()["path_attributes"] == before + 1
        del attrs
        gc.collect()
        assert intern_stats()["path_attributes"] == before

    def test_pickle_reinterns(self):
        attrs = PathAttributes(as_path=AsPath.of(4), communities=("x",))
        assert pickle.loads(pickle.dumps(attrs)) is attrs


class TestMemoryShape:
    def _route(self):
        return Route(Prefix.parse("10.0.1.0/24"),
                     PathAttributes(as_path=AsPath.of(2, 1)), peer_asn=2)

    def _samples(self):
        return [
            AsPath.of(1, 2),
            PathAttributes(),
            self._route(),
            BGPOpen(sender_asn=1, router_id="AS1"),
            BGPKeepalive(sender_asn=1),
            BGPUpdate(sender_asn=1, withdrawn=(Prefix.parse("10.0.1.0/24"),)),
            Packet(IPv4Address.parse("10.0.1.1"),
                   IPv4Address.parse("10.0.2.1")),
            Event(time=0.0, seq=0, callback=lambda: None),
        ]

    def test_no_instance_dicts(self):
        for obj in self._samples():
            assert not hasattr(obj, "__dict__"), type(obj).__name__

    def test_hot_objects_are_pointer_sized(self):
        # A slotted instance is header + one pointer per slot.  With a
        # __dict__ the *empty* dict alone adds ~64 bytes on CPython —
        # these bounds fail immediately if slots regress.
        route = self._route()
        assert sys.getsizeof(route) <= 8 * len(Route.__slots__) + 32
        attrs = PathAttributes()
        assert sys.getsizeof(attrs) <= 8 * len(PathAttributes.__slots__) + 32
        packet = Packet(IPv4Address.parse("10.0.1.1"),
                        IPv4Address.parse("10.0.2.1"))
        assert sys.getsizeof(packet) <= 8 * len(Packet.__slots__) + 40

    def test_prov_slot_still_writable_on_messages(self):
        # Links stamp per-hop provenance onto messages at transmit time;
        # the slot lives on the Message base so slotted subclasses keep
        # accepting it.
        update = BGPUpdate(sender_asn=1)
        update._prov = "ctx"
        assert update._prov == "ctx"
