"""Unit tests for BGP message types."""

from repro.bgp.attrs import AsPath, PathAttributes
from repro.bgp.messages import (
    BGPKeepalive,
    BGPNotification,
    BGPOpen,
    BGPUpdate,
)
from repro.net.addr import Prefix

PFX = Prefix.parse("10.0.0.0/24")


class TestUpdate:
    def test_empty_flag(self):
        assert BGPUpdate(sender_asn=1).empty
        assert not BGPUpdate(sender_asn=1, withdrawn=(PFX,)).empty

    def test_update_ids_unique_and_increasing(self):
        a = BGPUpdate(sender_asn=1)
        b = BGPUpdate(sender_asn=1)
        assert b.update_id > a.update_id

    def test_describe_mentions_content(self):
        update = BGPUpdate(
            sender_asn=7,
            announced=((PFX, PathAttributes(as_path=AsPath.of(7))),),
            withdrawn=(Prefix.parse("10.1.0.0/24"),),
        )
        text = update.describe()
        assert "AS7" in text
        assert "10.0.0.0/24" in text and "10.1.0.0/24" in text


class TestOthers:
    def test_open_carries_identity(self):
        msg = BGPOpen(sender_asn=9, router_id="as9", hold_time=90.0)
        assert msg.sender_asn == 9 and msg.router_id == "as9"

    def test_keepalive_describe(self):
        assert "AS3" in BGPKeepalive(sender_asn=3).describe()

    def test_notification_default_code(self):
        assert BGPNotification(sender_asn=1).code == "cease"
