"""Tests for the session's output-batching window.

Near-simultaneous decision changes must leave in ONE UPDATE (one MRAI
round), like a real bgpd's periodic output runs — the behaviour that
keeps multi-prefix events (session loss, node failure) from burning one
MRAI round per prefix.
"""

from repro.bgp.router import BGPRouter
from repro.bgp.session import BGPTimers
from repro.net.addr import Prefix


def make_pair(net, mrai=30.0):
    timers = BGPTimers(mrai=mrai, mrai_jitter=0.0)
    a = net.add_node(BGPRouter(net.sim, net.trace, "a", asn=1, timers=timers))
    b = net.add_node(BGPRouter(net.sim, net.trace, "b", asn=2, timers=timers))
    link = net.add_link(a, b, latency=0.01)
    a.add_peer(link)
    b.add_peer(link)
    a.start()
    b.start()
    net.sim.run_until_settled()
    return a, b


class TestBatching:
    def test_simultaneous_originations_share_one_update(self, net):
        a, b = make_pair(net)
        t0 = net.sim.now
        a.originate(Prefix.parse("192.168.0.0/24"))
        a.originate(Prefix.parse("192.168.1.0/24"))
        a.originate(Prefix.parse("192.168.2.0/24"))
        net.sim.run_until_settled()
        updates = [
            r for r in net.trace.filter(
                category="bgp.update.rx", node="b", since=t0
            )
            if r.data["announced"]
        ]
        assert len(updates) == 1
        assert len(updates[0].data["announced"]) == 3

    def test_batched_update_arrives_within_output_window(self, net):
        a, b = make_pair(net)
        t0 = net.sim.now
        a.originate(Prefix.parse("192.168.0.0/24"))
        net.sim.run_until_settled()
        rx = net.trace.filter(category="bgp.update.rx", node="b", since=t0)
        # output window (10ms) + latency (10ms) + proc jitter
        assert rx[0].time - t0 < 0.1

    def test_flap_within_window_cancels_out(self, net):
        """Announce+withdraw inside one window -> nothing on the wire."""
        a, b = make_pair(net)
        t0 = net.sim.now
        prefix = Prefix.parse("192.168.0.0/24")
        a.originate(prefix)
        a.withdraw(prefix)  # same instant, before the output run
        net.sim.run_until_settled()
        rx = net.trace.filter(category="bgp.update.rx", node="b", since=t0)
        assert rx == []

    def test_session_loss_batches_all_withdrawals(self, net):
        """Losing a peer with many prefixes -> one UPDATE to others."""
        timers = BGPTimers(mrai=30.0, mrai_jitter=0.0,
                           withdrawal_rate_limited=True)
        nodes = []
        for i in (1, 2, 3):
            node = net.add_node(
                BGPRouter(net.sim, net.trace, f"r{i}", asn=i, timers=timers)
            )
            nodes.append(node)
        links = {}
        for i in range(3):
            for j in range(i + 1, 3):
                link = net.add_link(nodes[i], nodes[j], latency=0.01)
                nodes[i].add_peer(link)
                nodes[j].add_peer(link)
                links[(i, j)] = link
        for node in nodes:
            node.start()
        net.sim.run_until_settled()
        for k in range(4):
            nodes[0].originate(Prefix.parse(f"192.168.{k}.0/24"))
        net.sim.run_until_settled()
        t0 = net.sim.now
        links[(0, 1)].fail()  # r2 loses r1 and must withdraw 4 prefixes
        net.sim.run_until_settled()
        # r2's withdrawals toward r3 ride one UPDATE (they were batched);
        # exploration announces may follow but the withdrawal burst is one.
        withdrawal_updates = [
            r for r in net.trace.filter(
                category="bgp.update.tx", node="r2", since=t0
            )
            if r.data["peer"] == "r3" and r.data["withdrawn"]
        ]
        assert len(withdrawal_updates) >= 1
        first = withdrawal_updates[0]
        assert len(first.data["withdrawn"]) + len(first.data["announced"]) >= 4
