"""Unit tests for route-maps and the Gao-Rexford / transit-all templates."""

import pytest

from repro.bgp.attrs import AsPath, PathAttributes
from repro.bgp.policy import (
    LOCAL_COMMUNITY,
    LOCAL_PREF_BY_RELATIONSHIP,
    Relationship,
    RouteMap,
    RouteMapEntry,
    add_community,
    gao_rexford_policy,
    match_as_in_path,
    match_community,
    match_prefix_in,
    prepend_path,
    relationship_community,
    set_local_pref,
    strip_learned_communities,
    transit_all_policy,
)
from repro.net.addr import Prefix

PFX = Prefix.parse("10.0.0.0/24")


class TestRelationship:
    def test_inverse_pairs(self):
        assert Relationship.CUSTOMER.inverse is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse is Relationship.CUSTOMER
        assert Relationship.PEER.inverse is Relationship.PEER
        assert Relationship.FLAT.inverse is Relationship.FLAT

    def test_local_pref_ladder(self):
        ladder = LOCAL_PREF_BY_RELATIONSHIP
        assert (
            ladder[Relationship.CUSTOMER]
            > ladder[Relationship.PEER]
            > ladder[Relationship.PROVIDER]
        )


class TestRouteMap:
    def test_implicit_deny(self):
        route_map = RouteMap([])
        assert route_map.evaluate(PFX, PathAttributes()) is None

    def test_default_permit(self):
        route_map = RouteMap([], default_permit=True)
        assert route_map.evaluate(PFX, PathAttributes()) is not None

    def test_first_match_wins(self):
        route_map = RouteMap(
            [
                RouteMapEntry(permit=True, actions=[set_local_pref(111)]),
                RouteMapEntry(permit=True, actions=[set_local_pref(222)]),
            ]
        )
        result = route_map.evaluate(PFX, PathAttributes())
        assert result.local_pref == 111

    def test_deny_entry_stops_evaluation(self):
        route_map = RouteMap(
            [
                RouteMapEntry(permit=False, matches=[match_prefix_in([PFX])]),
                RouteMapEntry(permit=True),
            ]
        )
        assert route_map.evaluate(PFX, PathAttributes()) is None
        other = Prefix.parse("192.168.0.0/24")
        assert route_map.evaluate(other, PathAttributes()) is not None

    def test_actions_apply_in_order(self):
        route_map = RouteMap(
            [
                RouteMapEntry(
                    permit=True,
                    actions=[set_local_pref(1), set_local_pref(2)],
                )
            ]
        )
        assert route_map.evaluate(PFX, PathAttributes()).local_pref == 2

    def test_all_matches_must_hold(self):
        entry = RouteMapEntry(
            permit=True,
            matches=[match_prefix_in([PFX]), match_community("x")],
        )
        route_map = RouteMap([entry])
        assert route_map.evaluate(PFX, PathAttributes()) is None
        tagged = PathAttributes(communities=("x",))
        assert route_map.evaluate(PFX, tagged) is not None


class TestMatchersAndActions:
    def test_match_prefix_in_covers_more_specific(self):
        match = match_prefix_in([Prefix.parse("10.0.0.0/8")])
        assert match(PFX, PathAttributes())
        assert not match(Prefix.parse("192.168.0.0/24"), PathAttributes())

    def test_match_as_in_path(self):
        match = match_as_in_path(7)
        assert match(PFX, PathAttributes(as_path=AsPath.of(9, 7, 1)))
        assert not match(PFX, PathAttributes(as_path=AsPath.of(9, 1)))

    def test_add_community_is_idempotent(self):
        action = add_community("tag")
        once = action(PathAttributes())
        twice = action(once)
        assert twice.communities.count("tag") == 1

    def test_strip_learned_communities(self):
        attrs = PathAttributes(
            communities=("learned:peer", LOCAL_COMMUNITY, "keepme")
        )
        stripped = strip_learned_communities()(attrs)
        assert stripped.communities == ("keepme",)

    def test_prepend_path_action(self):
        attrs = PathAttributes(as_path=AsPath.of(1))
        assert prepend_path(9, 2)(attrs).as_path.asns == (9, 9, 1)


class TestGaoRexford:
    def _import(self, relationship):
        policy = gao_rexford_policy(relationship)
        return policy.import_route(PFX, PathAttributes(as_path=AsPath.of(1)))

    @pytest.mark.parametrize(
        "relationship",
        [Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER],
    )
    def test_import_sets_relationship_local_pref(self, relationship):
        imported = self._import(relationship)
        assert imported.local_pref == LOCAL_PREF_BY_RELATIONSHIP[relationship]

    def test_import_tags_relationship(self):
        imported = self._import(Relationship.PEER)
        assert imported.has_community(relationship_community(Relationship.PEER))

    def _exports(self, learned_from, export_to):
        """Whether a route learned from X may be exported to Y."""
        attrs = PathAttributes(as_path=AsPath.of(1))
        imported = gao_rexford_policy(learned_from).import_route(PFX, attrs)
        exported = gao_rexford_policy(export_to).export_route(PFX, imported)
        return exported is not None

    def test_customer_routes_export_everywhere(self):
        for to in (Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER):
            assert self._exports(Relationship.CUSTOMER, to)

    def test_peer_routes_export_only_to_customers(self):
        assert self._exports(Relationship.PEER, Relationship.CUSTOMER)
        assert not self._exports(Relationship.PEER, Relationship.PEER)
        assert not self._exports(Relationship.PEER, Relationship.PROVIDER)

    def test_provider_routes_export_only_to_customers(self):
        assert self._exports(Relationship.PROVIDER, Relationship.CUSTOMER)
        assert not self._exports(Relationship.PROVIDER, Relationship.PEER)
        assert not self._exports(Relationship.PROVIDER, Relationship.PROVIDER)

    def test_local_routes_export_everywhere(self):
        local = PathAttributes(communities=(LOCAL_COMMUNITY,))
        for to in (Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER):
            assert gao_rexford_policy(to).export_route(PFX, local) is not None

    def test_export_strips_internal_communities(self):
        attrs = gao_rexford_policy(Relationship.CUSTOMER).import_route(
            PFX, PathAttributes(as_path=AsPath.of(1))
        )
        exported = gao_rexford_policy(Relationship.PEER).export_route(PFX, attrs)
        assert all(not c.startswith("learned:") for c in exported.communities)


class TestTransitAll:
    def test_accepts_and_reexports_everything(self):
        policy = transit_all_policy()
        attrs = PathAttributes(as_path=AsPath.of(5))
        imported = policy.import_route(PFX, attrs)
        assert imported is not None
        assert policy.export_route(PFX, imported) is not None


class TestExportPrepend:
    def test_prepend_applied_on_permit(self):
        policy = transit_all_policy().with_export_prepend(9, 3)
        exported = policy.export_route(PFX, PathAttributes(as_path=AsPath.of(1)))
        assert exported.as_path.asns == (9, 9, 9, 1)

    def test_original_policy_unchanged(self):
        base = transit_all_policy()
        base.with_export_prepend(9, 3)
        exported = base.export_route(PFX, PathAttributes(as_path=AsPath.of(1)))
        assert exported.as_path.asns == (1,)

    def test_denied_routes_stay_denied(self):
        policy = gao_rexford_policy(Relationship.PEER).with_export_prepend(9, 1)
        peer_route = policy.import_route(PFX, PathAttributes(as_path=AsPath.of(1)))
        # peer-learned to peer: still denied after prepend wrapping
        assert policy.export_route(PFX, peer_route) is None
