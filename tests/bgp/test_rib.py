"""Unit tests for Adj-RIB-In / Loc-RIB / Adj-RIB-Out."""

from repro.bgp.attrs import AsPath, PathAttributes
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib, Route
from repro.net.addr import Prefix

PFX = Prefix.parse("10.0.0.0/24")
PFX2 = Prefix.parse("10.0.1.0/24")


def route(prefix=PFX, path=(1,), peer=1):
    return Route(
        prefix=prefix,
        attrs=PathAttributes(as_path=AsPath.from_iterable(path)),
        peer_asn=peer,
        peer_name=f"as{peer}",
    )


class TestAdjRibIn:
    def test_update_and_get(self):
        rib = AdjRibIn(1)
        assert rib.update(route()) is True
        assert rib.get(PFX) is not None

    def test_identical_update_reports_no_change(self):
        rib = AdjRibIn(1)
        rib.update(route())
        assert rib.update(route()) is False

    def test_changed_attrs_report_change(self):
        rib = AdjRibIn(1)
        rib.update(route(path=(1,)))
        assert rib.update(route(path=(2, 1))) is True

    def test_withdraw(self):
        rib = AdjRibIn(1)
        rib.update(route())
        assert rib.withdraw(PFX) is True
        assert rib.withdraw(PFX) is False
        assert rib.get(PFX) is None

    def test_clear_returns_prefixes(self):
        rib = AdjRibIn(1)
        rib.update(route(PFX))
        rib.update(route(PFX2))
        cleared = rib.clear()
        assert sorted(str(p) for p in cleared) == ["10.0.0.0/24", "10.0.1.0/24"]
        assert len(rib) == 0

    def test_iteration(self):
        rib = AdjRibIn(1)
        rib.update(route(PFX))
        rib.update(route(PFX2))
        assert len(list(rib)) == 2


class TestLocRib:
    def test_set_best_and_versioning(self):
        rib = LocRib()
        v0 = rib.version
        assert rib.set_best(route()) is True
        assert rib.version > v0

    def test_same_best_no_version_bump(self):
        rib = LocRib()
        rib.set_best(route())
        v = rib.version
        assert rib.set_best(route()) is False
        assert rib.version == v

    def test_peer_change_counts_as_change(self):
        rib = LocRib()
        rib.set_best(route(peer=1))
        assert rib.set_best(route(peer=2)) is True

    def test_remove(self):
        rib = LocRib()
        rib.set_best(route())
        assert rib.remove(PFX) is True
        assert rib.remove(PFX) is False

    def test_routes_sorted_by_prefix(self):
        rib = LocRib()
        rib.set_best(route(PFX2))
        rib.set_best(route(PFX))
        assert [str(r.prefix) for r in rib.routes()] == [
            "10.0.0.0/24", "10.0.1.0/24",
        ]


class TestAdjRibOut:
    def test_first_announce_needed(self):
        rib = AdjRibOut(1)
        attrs = PathAttributes(as_path=AsPath.of(1))
        assert rib.diff(PFX, attrs) == ("announce", attrs)

    def test_same_attrs_no_resend(self):
        rib = AdjRibOut(1)
        attrs = PathAttributes(as_path=AsPath.of(1))
        rib.mark_sent(PFX, attrs)
        assert rib.diff(PFX, attrs) is None

    def test_changed_attrs_resend(self):
        rib = AdjRibOut(1)
        rib.mark_sent(PFX, PathAttributes(as_path=AsPath.of(1)))
        new = PathAttributes(as_path=AsPath.of(2, 1))
        assert rib.diff(PFX, new) == ("announce", new)

    def test_withdraw_only_if_previously_sent(self):
        rib = AdjRibOut(1)
        assert rib.diff(PFX, None) is None
        rib.mark_sent(PFX, PathAttributes())
        assert rib.diff(PFX, None) == ("withdraw", None)

    def test_mark_sent_none_clears(self):
        rib = AdjRibOut(1)
        rib.mark_sent(PFX, PathAttributes())
        rib.mark_sent(PFX, None)
        assert rib.diff(PFX, None) is None
        assert len(rib) == 0

    def test_diff_does_not_mutate(self):
        rib = AdjRibOut(1)
        attrs = PathAttributes()
        rib.diff(PFX, attrs)
        assert rib.diff(PFX, attrs) == ("announce", attrs)


class TestRoute:
    def test_local_route(self):
        local = Route(prefix=PFX, attrs=PathAttributes(), peer_asn=0)
        assert local.is_local

    def test_as_path_len(self):
        assert route(path=(3, 2, 1)).as_path_len == 3
