"""Unit tests for the BGP router: RIBs, decision, FIB, propagation."""

import pytest

from repro.bgp.attrs import AsPath
from repro.bgp.policy import Relationship, gao_rexford_policy
from repro.bgp.router import BGPRouter
from repro.bgp.session import BGPTimers
from repro.net.addr import Prefix
from tests.conftest import make_bgp_mesh

PFX = Prefix.parse("192.168.0.0/24")


class TestOrigination:
    def test_originate_installs_local_fib(self, net):
        (a, b) = make_bgp_mesh(net, 2)
        a.originate(PFX)
        entry = a.fib.get(PFX)
        assert entry is not None and entry.link is None

    def test_originate_propagates(self, net):
        (a, b) = make_bgp_mesh(net, 2)
        a.originate(PFX)
        net.sim.run_until_settled()
        route = b.loc_rib.get(PFX)
        assert route is not None
        assert list(route.attrs.as_path) == [1]

    def test_withdraw_cleans_everywhere(self, net):
        (a, b) = make_bgp_mesh(net, 2)
        a.originate(PFX)
        net.sim.run_until_settled()
        a.withdraw(PFX)
        net.sim.run_until_settled()
        assert a.loc_rib.get(PFX) is None
        assert b.loc_rib.get(PFX) is None
        assert b.fib.get(PFX) is None

    def test_withdraw_unknown_prefix_raises(self, net):
        (a, b) = make_bgp_mesh(net, 2)
        with pytest.raises(KeyError):
            a.withdraw(PFX)

    def test_bad_asn_rejected(self, net):
        with pytest.raises(ValueError):
            BGPRouter(net.sim, net.trace, "x", asn=0)


class TestPropagation:
    def test_as_path_grows_per_hop(self, net):
        routers = []
        timers = BGPTimers(mrai=0.5)
        for i in range(1, 4):
            router = BGPRouter(net.sim, net.trace, f"as{i}", asn=i, timers=timers)
            net.add_node(router)
            routers.append(router)
        for i in range(2):  # line: as1 - as2 - as3
            link = net.add_link(routers[i], routers[i + 1])
            routers[i].add_peer(link)
            routers[i + 1].add_peer(link)
        for router in routers:
            router.start()
        net.sim.run_until_settled()
        routers[0].originate(PFX)
        net.sim.run_until_settled()
        assert list(routers[2].loc_rib.get(PFX).attrs.as_path) == [2, 1]

    def test_loop_rejection(self, bgp_triangle, net):
        """A route whose path contains the receiver's ASN is discarded."""
        a, b, c = bgp_triangle
        a.originate(PFX)
        net.sim.run_until_settled()
        # b learned [1] direct and advertises [2,1] to c; c must never
        # accept any path containing 3, so check rib contents directly.
        for router in (a, b, c):
            for session in router.sessions.values():
                for route in router.adj_rib_in(session):
                    assert not route.attrs.as_path.contains(router.asn)

    def test_best_path_prefers_direct(self, bgp_triangle, net):
        a, b, c = bgp_triangle
        a.originate(PFX)
        net.sim.run_until_settled()
        assert list(b.loc_rib.get(PFX).attrs.as_path) == [1]
        assert list(c.loc_rib.get(PFX).attrs.as_path) == [1]

    def test_fib_follows_best_change(self, bgp_triangle, net):
        a, b, c = bgp_triangle
        a.originate(PFX)
        net.sim.run_until_settled()
        direct = c.fib.get(PFX)
        assert direct.via == "as1"
        net.link_between("as1", "as3").fail()
        net.sim.run_until_settled()
        rerouted = c.fib.get(PFX)
        assert rerouted is not None and rerouted.via == "as2"

    def test_path_exploration_on_withdrawal(self, bgp_triangle, net):
        """Withdrawal triggers at least one stale-path exploration step."""
        a, b, c = bgp_triangle
        a.originate(PFX)
        net.sim.run_until_settled()
        t0 = net.sim.now
        a.withdraw(PFX)
        net.sim.run_until_settled()
        decisions = [
            r for r in net.trace.filter(category="bgp.decision", since=t0)
            if r.data["prefix"] == str(PFX) and r.node in ("as2", "as3")
        ]
        # each of b, c at least loses the route; exploration may add more
        assert len(decisions) >= 2
        assert all(
            rec.data["new"] is None
            for rec in decisions if rec.time == max(r.time for r in decisions)
        )

    def test_split_horizon_no_echo_to_best_source(self, bgp_triangle, net):
        a, b, c = bgp_triangle
        a.originate(PFX)
        net.sim.run_until_settled()
        # b's best is via a; b must not have advertised the prefix back to a
        for session in a.sessions.values():
            if session.peer_name == "as2":
                route = a.adj_rib_in(session).get(PFX)
                assert route is None


class TestGaoRexfordIntegration:
    def build(self, net):
        """provider as1 above peers as2, as3; as2/as3 each have customer."""
        timers = BGPTimers(mrai=0.2)
        routers = {}
        for asn in (1, 2, 3, 4, 5):
            routers[asn] = net.add_node(
                BGPRouter(net.sim, net.trace, f"as{asn}", asn=asn, timers=timers)
            )

        def connect(up, down, rel_down):
            link = net.add_link(routers[up], routers[down])
            routers[up].add_peer(link, policy=gao_rexford_policy(rel_down))
            routers[down].add_peer(
                link, policy=gao_rexford_policy(rel_down.inverse)
            )

        # as1 provider of as2 and as3; as2 ~ as3 peers; as4 customer of
        # as2; as5 customer of as3.
        connect(1, 2, Relationship.CUSTOMER)
        connect(1, 3, Relationship.CUSTOMER)
        link = net.add_link(routers[2], routers[3])
        routers[2].add_peer(link, policy=gao_rexford_policy(Relationship.PEER))
        routers[3].add_peer(link, policy=gao_rexford_policy(Relationship.PEER))
        connect(2, 4, Relationship.CUSTOMER)
        connect(3, 5, Relationship.CUSTOMER)
        for router in routers.values():
            router.start()
        net.sim.run_until_settled()
        return routers

    def test_customer_route_reaches_everyone(self, net):
        routers = self.build(net)
        routers[4].originate(PFX)  # stub customer announces
        net.sim.run_until_settled()
        for asn in (1, 2, 3, 5):
            assert routers[asn].loc_rib.get(PFX) is not None, f"as{asn}"

    def test_valley_free_paths_only(self, net):
        routers = self.build(net)
        routers[4].originate(PFX)
        net.sim.run_until_settled()
        # as5's path must be valley-free: 3 2 4 (peer then customer ok
        # when heard from provider as3) or 3 1 2 4 — never ... 5 ... etc.
        path = list(routers[5].loc_rib.get(PFX).attrs.as_path)
        assert path[-1] == 4
        assert path[0] == 3

    def test_peer_route_not_given_to_provider(self, net):
        routers = self.build(net)
        routers[2].originate(PFX)
        net.sim.run_until_settled()
        # as3 hears [2] via peering; it must not export it to provider as1.
        # as1 still reaches PFX via its customer as2 directly:
        path = list(routers[1].loc_rib.get(PFX).attrs.as_path)
        assert path == [2]
        # and as3 -> as1 session must not carry it:
        for session in routers[1].sessions.values():
            if session.peer_name == "as3":
                assert routers[1].adj_rib_in(session).get(PFX) is None

    def test_customer_prefers_customer_route(self, net):
        routers = self.build(net)
        # as4 announces; as2 hears it as customer route (pref 200) and
        # would never prefer a peer/provider path even if shorter.
        routers[4].originate(PFX)
        net.sim.run_until_settled()
        best = routers[2].loc_rib.get(PFX)
        assert best.attrs.local_pref == 200


class TestDiagnostics:
    def test_rib_dump_marks_best(self, bgp_triangle, net):
        a, b, c = bgp_triangle
        a.originate(PFX)
        net.sim.run_until_settled()
        dump = c.rib_dump(PFX)
        assert dump[0].startswith("*>")
        assert any("as1" not in line or "AS1" in line for line in dump)

    def test_rib_dump_all_prefixes(self, bgp_triangle, net):
        a, b, c = bgp_triangle
        a.originate(PFX)
        b.originate(Prefix.parse("192.168.1.0/24"))
        net.sim.run_until_settled()
        assert len(c.rib_dump()) >= 2
