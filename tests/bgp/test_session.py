"""Unit tests for the BGP session FSM, MRAI pacing, and fallover."""

import pytest

from repro.bgp.router import BGPRouter
from repro.bgp.session import BGPTimers, SessionState
from repro.net.addr import Prefix

PFX = Prefix.parse("192.168.0.0/24")


def make_pair(net, timers_a=None, timers_b=None, *, start=True):
    a = net.add_node(
        BGPRouter(net.sim, net.trace, "a", asn=1,
                  timers=timers_a or BGPTimers(mrai=10.0))
    )
    b = net.add_node(
        BGPRouter(net.sim, net.trace, "b", asn=2,
                  timers=timers_b or BGPTimers(mrai=10.0))
    )
    link = net.add_link(a, b, latency=0.01)
    sa = a.add_peer(link)
    sb = b.add_peer(link)
    if start:
        a.start()
        b.start()
        net.sim.run_until_settled()
    return a, b, link, sa, sb


class TestEstablishment:
    def test_sessions_establish(self, net):
        a, b, link, sa, sb = make_pair(net)
        assert sa.established and sb.established

    def test_peer_identity_learned_from_open(self, net):
        a, b, link, sa, sb = make_pair(net)
        assert sa.peer_asn == 2 and sa.peer_name == "b"
        assert sb.peer_asn == 1 and sb.peer_name == "a"

    def test_start_requires_link_up(self, net):
        a, b, link, sa, sb = make_pair(net, start=False)
        link.up = False
        sa.start()
        assert sa.state is SessionState.IDLE

    def test_one_sided_start_still_establishes(self, net):
        """The passive side answers the active side's OPEN."""
        a, b, link, sa, sb = make_pair(net, start=False)
        a.start()  # only a initiates
        net.sim.run_until_settled()
        assert sa.established and sb.established

    def test_initial_table_sync_on_establish(self, net):
        a, b, link, sa, sb = make_pair(net, start=False)
        a.originate(PFX)
        a.start()
        b.start()
        net.sim.run_until_settled()
        assert b.loc_rib.get(PFX) is not None


class TestTeardown:
    def test_stop_notifies_peer(self, net):
        a, b, link, sa, sb = make_pair(net)
        sa.stop()
        net.sim.run(until=net.sim.now + 0.1)
        assert sa.state is SessionState.IDLE
        # the peer received the NOTIFICATION, dropped the session, and is
        # already retrying (CONNECT) - but it is no longer established
        assert not sb.established

    def test_fast_fallover_on_link_down(self, net):
        a, b, link, sa, sb = make_pair(net)
        link.fail()
        assert sa.state is SessionState.IDLE
        assert sb.state is SessionState.IDLE

    def test_no_fallover_without_fast_fallover(self, net):
        timers = BGPTimers(mrai=10.0, fast_fallover=False)
        a, b, link, sa, sb = make_pair(net, timers, timers)
        link.fail()
        assert sa.established  # failure undetected (no keepalives)

    def test_session_reestablishes_after_restore(self, net):
        a, b, link, sa, sb = make_pair(net)
        link.fail()
        link.restore()
        net.sim.run_until_settled()
        assert sa.established and sb.established

    def test_routes_flushed_on_session_down(self, net):
        a, b, link, sa, sb = make_pair(net)
        a.originate(PFX)
        net.sim.run_until_settled()
        assert b.loc_rib.get(PFX) is not None
        link.fail()
        net.sim.run_until_settled()
        assert b.loc_rib.get(PFX) is None

    def test_routes_relearned_after_flap(self, net):
        a, b, link, sa, sb = make_pair(net)
        a.originate(PFX)
        net.sim.run_until_settled()
        link.fail()
        link.restore()
        net.sim.run_until_settled()
        assert b.loc_rib.get(PFX) is not None

    def test_peer_unreachable_forces_down(self, net):
        a, b, link, sa, sb = make_pair(net)
        sa.peer_unreachable()
        assert sa.state is SessionState.IDLE

    def test_peer_reachable_reconnects(self, net):
        a, b, link, sa, sb = make_pair(net)
        sa.peer_unreachable()
        sb.peer_unreachable()
        sa.peer_reachable()
        sb.peer_reachable()
        net.sim.run_until_settled()
        assert sa.established


class TestMraiPacing:
    def test_first_update_is_immediate(self, net):
        a, b, link, sa, sb = make_pair(net)
        t0 = net.sim.now
        a.originate(PFX)
        net.sim.run_until_settled()
        rx = net.trace.filter(category="bgp.update.rx", node="b", since=t0)
        # Delivered within output batching + latency, far below MRAI.
        assert rx and rx[0].time - t0 < 1.0

    def test_rapid_changes_coalesce_within_mrai(self, net):
        """Two flaps inside one MRAI window reach the peer as one UPDATE."""
        a, b, link, sa, sb = make_pair(net)
        t0 = net.sim.now
        a.originate(PFX)
        net.sim.run_until_settled()
        first_count = len(net.trace.filter(category="bgp.update.rx", node="b", since=t0))
        t1 = net.sim.now
        # flap: withdraw + reannounce within the MRAI window
        a.withdraw(PFX)
        a.originate(PFX)
        net.sim.run_until_settled()
        rx = net.trace.filter(category="bgp.update.rx", node="b", since=t1)
        # The withdrawal escapes MRAI (RFC default) but announce+withdraw
        # resolve to the same attrs as before -> at most the withdrawal
        # plus one re-announce; never two separate announces.
        announces = [r for r in rx if r.data["announced"]]
        assert len(announces) <= 1

    def test_mrai_delays_second_announcement(self, net):
        timers = BGPTimers(mrai=10.0, mrai_jitter=0.0)
        a, b, link, sa, sb = make_pair(net, timers, timers)
        t0 = net.sim.now
        a.originate(PFX)
        net.sim.run(until=t0 + 1.0)
        # a second, different announcement within the MRAI window
        a.originate(Prefix.parse("192.168.1.0/24"))
        net.sim.run_until_settled()
        rx = [
            r for r in net.trace.filter(category="bgp.update.rx", node="b", since=t0)
            if r.data["announced"]
        ]
        assert len(rx) == 2
        gap = rx[1].time - rx[0].time
        assert 9.0 <= gap <= 10.5

    def test_zero_mrai_sends_back_to_back(self, net):
        timers = BGPTimers(mrai=0.0)
        a, b, link, sa, sb = make_pair(net, timers, timers)
        t0 = net.sim.now
        a.originate(PFX)
        net.sim.run(until=t0 + 0.5)
        a.originate(Prefix.parse("192.168.1.0/24"))
        net.sim.run_until_settled()
        rx = [
            r for r in net.trace.filter(category="bgp.update.rx", node="b", since=t0)
            if r.data["announced"]
        ]
        assert len(rx) == 2
        assert rx[1].time - rx[0].time < 1.0

    def test_withdrawal_escapes_mrai_by_default(self, net):
        timers = BGPTimers(mrai=30.0, mrai_jitter=0.0)
        a, b, link, sa, sb = make_pair(net, timers, timers)
        a.originate(PFX)
        net.sim.run_until_settled()
        t0 = net.sim.now
        # start an MRAI round with a second announcement...
        a.originate(Prefix.parse("192.168.1.0/24"))
        net.sim.run(until=t0 + 1.0)
        # ...then withdraw inside the window: must not wait 30s.
        a.withdraw(PFX)
        net.sim.run(until=t0 + 5.0)
        withdrawals = [
            r for r in net.trace.filter(category="bgp.update.rx", node="b", since=t0)
            if r.data["withdrawn"]
        ]
        assert withdrawals and withdrawals[0].time - t0 < 2.0

    def test_withdrawal_rate_limited_waits_for_mrai(self, net):
        timers = BGPTimers(
            mrai=30.0, mrai_jitter=0.0, withdrawal_rate_limited=True
        )
        a, b, link, sa, sb = make_pair(net, timers, timers)
        a.originate(PFX)
        net.sim.run_until_settled()
        t0 = net.sim.now
        a.originate(Prefix.parse("192.168.1.0/24"))  # opens an MRAI round
        net.sim.run(until=t0 + 1.0)
        a.withdraw(PFX)
        net.sim.run_until_settled()
        withdrawals = [
            r for r in net.trace.filter(category="bgp.update.rx", node="b", since=t0)
            if r.data["withdrawn"]
        ]
        assert withdrawals and withdrawals[0].time - t0 >= 29.0

    def test_mrai_jitter_within_rfc_bounds(self, net):
        timers = BGPTimers(mrai=10.0, mrai_jitter=0.25)
        a, b, link, sa, sb = make_pair(net, timers, timers)
        period = sa._mrai_period()
        assert 7.5 <= period <= 10.0


class TestKeepalives:
    def test_keepalives_maintain_session(self, net):
        timers = BGPTimers(
            mrai=1.0, keepalives_enabled=True,
            keepalive_interval=5.0, hold_time=15.0,
        )
        a, b, link, sa, sb = make_pair(net, timers, timers)
        net.sim.run(until=net.sim.now + 60.0)
        assert sa.established and sb.established

    def test_hold_timer_detects_silent_failure(self, net):
        timers = BGPTimers(
            mrai=1.0, keepalives_enabled=True,
            keepalive_interval=5.0, hold_time=15.0, fast_fallover=False,
        )
        a, b, link, sa, sb = make_pair(net, timers, timers)
        link.up = False  # silent failure: no notifications
        net.sim.run(until=net.sim.now + 30.0)
        assert not sa.established
        downs = net.trace.filter(category="bgp.session.down")
        assert any(r.data.get("reason") == "hold_timer" for r in downs)
