"""Property test: the session FSM survives arbitrary message sequences.

A BGP speaker on the real Internet receives whatever the wire delivers.
Hypothesis throws random message sequences (interleaved with link flaps
and local start/stop calls) at a configured session and checks the FSM
invariants: no crash, state stays valid, ESTABLISHED is only reachable
through a proper OPEN/KEEPALIVE exchange, and the router's per-peer RIBs
are empty whenever the session is not established.
"""

from hypothesis import given, settings, strategies as st

from repro.bgp.attrs import AsPath, PathAttributes
from repro.bgp.messages import (
    BGPKeepalive,
    BGPNotification,
    BGPOpen,
    BGPUpdate,
)
from repro.bgp.router import BGPRouter
from repro.bgp.session import BGPTimers, SessionState
from repro.eventsim import Simulator, TraceLog
from repro.net.addr import Prefix
from repro.net.network import Network

PFX = Prefix.parse("10.9.0.0/24")

actions = st.lists(
    st.sampled_from(
        [
            "peer_open",
            "peer_keepalive",
            "peer_update",
            "peer_notification",
            "local_start",
            "local_stop",
            "link_down",
            "link_up",
            "run",
        ]
    ),
    min_size=1,
    max_size=25,
)


@given(actions)
@settings(max_examples=120, deadline=None)
def test_fsm_never_crashes_or_corrupts(sequence):
    net = Network(seed=7)
    a = net.add_node(
        BGPRouter(net.sim, net.trace, "a", asn=1, timers=BGPTimers(mrai=1.0))
    )
    b = net.add_node(
        BGPRouter(net.sim, net.trace, "b", asn=2, timers=BGPTimers(mrai=1.0))
    )
    link = net.add_link(a, b, latency=0.01)
    session = a.add_peer(link)
    b.add_peer(link)

    def send_from_peer(message):
        if link.up:
            link.transmit(b, message)

    for action in sequence:
        if action == "peer_open":
            send_from_peer(BGPOpen(sender_asn=2, router_id="b"))
        elif action == "peer_keepalive":
            send_from_peer(BGPKeepalive(sender_asn=2))
        elif action == "peer_update":
            send_from_peer(
                BGPUpdate(
                    sender_asn=2,
                    announced=(
                        (PFX, PathAttributes(as_path=AsPath.of(2))),
                    ),
                )
            )
        elif action == "peer_notification":
            send_from_peer(BGPNotification(sender_asn=2))
        elif action == "local_start":
            session.start()
        elif action == "local_stop":
            session.stop()
        elif action == "link_down":
            link.set_up(False)
        elif action == "link_up":
            link.set_up(True)
        elif action == "run":
            net.sim.run(until=net.sim.now + 0.5)
        # invariant: state is always a legal enum member
        assert session.state in SessionState
        # invariant: non-established sessions advertise nothing
        if not session.established:
            assert len(a.adj_rib_out(session)) == 0

    net.sim.run(until=net.sim.now + 5.0)
    assert session.state in SessionState
    if session.established:
        # established implies the peer's identity was learned via OPEN
        assert session.peer_asn == 2
    else:
        # ...and a dead session holds no routes from the peer
        assert len(a.adj_rib_in(session)) == 0
