"""Unit + property tests for the address allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.config.allocator import AllocationError, PrefixAllocator
from repro.net.addr import Prefix


class TestAsPrefixes:
    def test_first_allocation(self):
        alloc = PrefixAllocator()
        assert str(alloc.as_prefix(7)) == "10.0.0.0/24"

    def test_stable_per_asn(self):
        alloc = PrefixAllocator()
        assert alloc.as_prefix(7) == alloc.as_prefix(7)

    def test_distinct_per_asn(self):
        alloc = PrefixAllocator()
        assert alloc.as_prefix(1) != alloc.as_prefix(2)

    def test_router_address_inside_prefix(self):
        alloc = PrefixAllocator()
        assert alloc.router_address(3) in alloc.as_prefix(3)

    def test_all_inside_pool(self):
        alloc = PrefixAllocator()
        pool = Prefix.parse("10.0.0.0/8")
        for asn in range(1, 50):
            assert alloc.as_prefix(asn) in pool


class TestHosts:
    def test_hosts_distinct_and_inside(self):
        alloc = PrefixAllocator()
        prefix = alloc.as_prefix(1)
        seen = {alloc.router_address(1)}
        for _ in range(10):
            host = alloc.host_address(1)
            assert host in prefix
            assert host not in seen
            seen.add(host)

    def test_host_pool_exhaustion(self):
        alloc = PrefixAllocator()
        alloc.as_prefix(1)
        with pytest.raises(AllocationError):
            for _ in range(300):
                alloc.host_address(1)


class TestLinkNets:
    def test_link_net_structure(self):
        alloc = PrefixAllocator()
        prefix, a, b = alloc.link_net()
        assert prefix.length == 30
        assert a in prefix and b in prefix and a != b

    def test_link_nets_disjoint(self):
        alloc = PrefixAllocator()
        nets = [alloc.link_net()[0] for _ in range(50)]
        for i, x in enumerate(nets):
            for y in nets[i + 1:]:
                assert not x.overlaps(y)


class TestOwnership:
    def test_owner_of(self):
        alloc = PrefixAllocator()
        addr = alloc.router_address(9)
        alloc.as_prefix(12)
        assert alloc.owner_of(addr) == 9

    def test_owner_of_unknown(self):
        alloc = PrefixAllocator()
        alloc.as_prefix(1)
        from repro.net.addr import IPv4Address

        assert alloc.owner_of(IPv4Address.parse("203.0.113.1")) is None

    def test_allocations_snapshot(self):
        alloc = PrefixAllocator()
        alloc.as_prefix(5)
        alloc.as_prefix(6)
        assert set(alloc.allocations()) == {5, 6}


@given(st.lists(st.integers(min_value=1, max_value=60000),
                min_size=1, max_size=60, unique=True))
def test_as_prefixes_pairwise_disjoint(asns):
    alloc = PrefixAllocator()
    prefixes = [alloc.as_prefix(asn) for asn in asns]
    for i, x in enumerate(prefixes):
        for y in prefixes[i + 1:]:
            assert not x.overlaps(y)


@given(st.lists(st.integers(min_value=1, max_value=60000),
                min_size=1, max_size=40, unique=True))
def test_allocation_independent_of_request_order(asns):
    forward = PrefixAllocator()
    first = [forward.as_prefix(asn) for asn in asns]
    again = PrefixAllocator()
    second = [again.as_prefix(asn) for asn in asns]
    assert first == second
