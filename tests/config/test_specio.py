"""JSON spec ingestion: precise validation, digest parity, round trips."""

import json

import pytest

from repro.config import (
    SpecIngestError,
    grid_from_json,
    runspec_from_json,
    scenario_names,
    spec_payload,
    specs_from_json,
    topology_names,
)
from repro.experiments.common import (
    FailoverScenario,
    WithdrawalScenario,
    run_fraction_sweep,
)
from repro.faults import get_canned
from repro.runner import RunSpec
from repro.topology.builders import clique, ring

BASE = {"scenario": "withdrawal", "n": 8, "sdn_count": 4, "seed": 7}


def errors_of(payload) -> list:
    with pytest.raises(SpecIngestError) as excinfo:
        runspec_from_json(payload)
    return excinfo.value.errors


class TestRunspecFromJson:
    def test_minimal_payload(self):
        spec = runspec_from_json(BASE)
        assert spec.scenario_factory is WithdrawalScenario
        assert spec.topology_factory is clique
        assert (spec.n, spec.sdn_count, spec.seed) == (8, 4, 7)
        assert spec.mrai == 30.0  # dataclass defaults apply

    def test_digest_matches_native_spec(self):
        spec = runspec_from_json({**BASE, "mrai": 1.0})
        native = RunSpec(
            scenario_factory=WithdrawalScenario,
            topology_factory=clique,
            n=8, sdn_count=4, seed=7, mrai=1.0,
        )
        assert spec.digest() == native.digest()

    def test_json_string_accepted(self):
        assert runspec_from_json(json.dumps(BASE)).digest() == (
            runspec_from_json(BASE).digest()
        )

    def test_every_scenario_and_topology_name_resolves(self):
        for scenario in scenario_names():
            for topology in topology_names():
                spec = runspec_from_json(
                    {**BASE, "scenario": scenario, "topology": topology}
                )
                assert spec.digest()

    def test_alternate_scenario_changes_digest(self):
        a = runspec_from_json(BASE)
        b = runspec_from_json({**BASE, "scenario": "failover"})
        assert b.scenario_factory is FailoverScenario
        assert a.digest() != b.digest()

    def test_faults_via_canonical_form(self):
        # JSON round-trips turn the canonical tuples into lists; the
        # ingest path must still canonicalize to the identical tuples.
        schedule = get_canned("gateway-outage").schedule()
        as_json = json.loads(json.dumps(schedule.canonical()))
        spec = runspec_from_json({**BASE, "faults": as_json})
        assert spec.faults == schedule.canonical()

    def test_unknown_field_named_precisely(self):
        errors = errors_of({**BASE, "bogus": 1})
        assert len(errors) == 1
        assert "unknown field 'bogus'" in errors[0]
        assert "scenario" in errors[0]  # lists the known fields

    def test_all_problems_reported_at_once(self):
        errors = errors_of(
            {"scenario": "nope", "n": 1, "metrics": "yes", "junk": 0}
        )
        joined = "\n".join(errors)
        assert len(errors) == 4
        assert "unknown field 'junk'" in joined
        assert "field 'scenario'" in joined
        assert "field 'n'" in joined
        assert "field 'metrics'" in joined

    def test_missing_required_fields(self):
        errors = errors_of({})
        assert any("'scenario' is required" in e for e in errors)
        assert any("'n' is required" in e for e in errors)

    def test_type_confusions_rejected(self):
        assert any(
            "expected an integer" in e for e in errors_of({**BASE, "n": 8.5})
        )
        assert any(
            "expected an integer" in e for e in errors_of({**BASE, "n": True})
        )
        assert any(
            "expected a number" in e
            for e in errors_of({**BASE, "mrai": "slow"})
        )
        assert any(
            "expected a list of integers" in e
            for e in errors_of({**BASE, "sdn_members": "5,6"})
        )

    def test_semantic_checks(self):
        assert any(
            "sdn_count" in e for e in errors_of({**BASE, "sdn_count": 9})
        )
        assert any(
            "sdn_members" in e
            for e in errors_of({**BASE, "sdn_members": [7, 99]})
        )
        assert any(
            "trace_level" in e
            for e in errors_of({**BASE, "trace_level": "loud"})
        )

    def test_malformed_faults_reported_not_raised(self):
        errors = errors_of({**BASE, "faults": {"events": [{"kind": "??"}]}})
        assert any("faults" in e for e in errors)

    def test_non_object_payload(self):
        with pytest.raises(SpecIngestError):
            runspec_from_json([1, 2, 3])
        with pytest.raises(SpecIngestError):
            runspec_from_json("{not json")


class TestGridFromJson:
    def test_matches_run_fraction_sweep_digests(self):
        grid = grid_from_json(
            {
                "scenario": "withdrawal", "n": 6,
                "sdn_counts": [0, 3], "runs": 2, "mrai": 1.0,
            }
        )
        result = run_fraction_sweep(
            WithdrawalScenario, n=6, sdn_counts=[0, 3], runs=2, mrai=1.0
        )
        executed = [run.seed for point in result.points for run in point.runs]
        assert [spec.seed for spec in grid] == executed
        assert [spec.label for spec in grid] == [
            f"withdrawal sdn={c} seed={100 + 1000 * c + i}"
            for c in (0, 3) for i in range(2)
        ]

    def test_default_sdn_counts_cover_zero_to_max(self):
        grid = grid_from_json({"scenario": "withdrawal", "n": 4, "runs": 1})
        assert [spec.sdn_count for spec in grid] == [0, 1, 2, 3]

    def test_expansion_limit(self):
        with pytest.raises(SpecIngestError) as excinfo:
            grid_from_json(
                {"scenario": "withdrawal", "n": 8, "runs": 10_000}
            )
        assert "limit" in str(excinfo.value)

    def test_grid_validation_errors(self):
        with pytest.raises(SpecIngestError) as excinfo:
            grid_from_json(
                {"scenario": "withdrawal", "n": 4, "sdn_counts": [0, 9]}
            )
        assert "sdn_counts" in str(excinfo.value)


class TestSpecsFromJson:
    def test_bare_spec_and_wrapped_spec(self):
        assert len(specs_from_json(BASE)) == 1
        assert len(specs_from_json({"spec": BASE})) == 1

    def test_grid_wrapper(self):
        specs = specs_from_json(
            {"grid": {"scenario": "withdrawal", "n": 4, "runs": 2}}
        )
        assert len(specs) == 8

    def test_both_shapes_rejected(self):
        with pytest.raises(SpecIngestError):
            specs_from_json({"spec": BASE, "grid": {}})

    def test_stray_siblings_rejected(self):
        with pytest.raises(SpecIngestError):
            specs_from_json({"spec": BASE, "extra": 1})


class TestSpecPayload:
    def test_round_trip_preserves_digest(self):
        original = runspec_from_json(
            {
                **BASE,
                "topology": "ring",
                "mrai": 2.0,
                "spans": True,
                "label": "round trip",
            }
        )
        clone = runspec_from_json(spec_payload(original))
        assert clone.digest() == original.digest()
        assert clone.label == original.label

    def test_unregistered_factory_rejected(self):
        from tests.runner.scenarios import RaisingScenario

        spec = RunSpec(
            scenario_factory=RaisingScenario,
            topology_factory=ring,
            n=4, sdn_count=0, seed=1,
        )
        with pytest.raises(SpecIngestError) as excinfo:
            spec_payload(spec)
        assert "no registered name" in str(excinfo.value)


class TestScaleKnobs:
    """compact/batch_delivery/lean ride specs and survive round trips,
    without disturbing any legacy digest (docs/scaling.md)."""

    def test_scale_fields_parse(self):
        spec = runspec_from_json(
            {**BASE, "compact": True, "batch_delivery": True, "lean": True}
        )
        assert spec.compact and spec.batch_delivery and spec.lean

    def test_false_knobs_keep_legacy_digest(self):
        # Explicit False must digest identically to absent — old cache
        # entries and registry rows stay addressable.
        legacy = runspec_from_json(BASE)
        explicit = runspec_from_json(
            {**BASE, "compact": False, "batch_delivery": False, "lean": False}
        )
        assert explicit.digest() == legacy.digest()

    def test_each_knob_changes_the_digest(self):
        base = runspec_from_json(BASE).digest()
        for knob in ("compact", "batch_delivery", "lean"):
            assert runspec_from_json({**BASE, knob: True}).digest() != base

    def test_payload_round_trip(self):
        original = runspec_from_json({**BASE, "compact": True, "lean": True})
        payload = spec_payload(original)
        assert payload["compact"] is True and payload["lean"] is True
        assert "batch_delivery" not in payload  # unset knobs stay out
        clone = runspec_from_json(payload)
        assert clone.digest() == original.digest()

    def test_knobs_must_be_booleans(self):
        assert any(
            "compact" in e for e in errors_of({**BASE, "compact": "yes"})
        )

    def test_caida_topology_registered(self):
        from repro.topology import caida_hierarchy

        assert "caida" in topology_names()
        spec = runspec_from_json({**BASE, "topology": "caida"})
        assert spec.topology_factory is caida_hierarchy

    def test_grid_accepts_scale_knobs(self):
        specs = grid_from_json(
            {
                "scenario": "withdrawal",
                "n": 8,
                "sdn_counts": [0, 2],
                "runs": 1,
                "compact": True,
                "lean": True,
            }
        )
        assert specs and all(s.compact and s.lean for s in specs)
