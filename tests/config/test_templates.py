"""Unit tests for Quagga/ExaBGP config rendering."""

from repro.bgp.policy import Relationship, gao_rexford_policy
from repro.bgp.session import BGPTimers
from repro.config.templates import (
    render_bgpd_conf,
    render_exabgp_conf,
    render_route_map,
)
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.net.addr import Prefix
from repro.topology.builders import clique
from tests.conftest import make_bgp_mesh


def hybrid_experiment():
    config = ExperimentConfig(
        seed=1,
        timers=BGPTimers(mrai=30.0),
        controller=ControllerConfig(recompute_delay=0.2),
    )
    return Experiment(clique(4), sdn_members={3, 4}, config=config).start()


class TestBgpdConf:
    def test_contains_router_stanza(self, net):
        (a, b) = make_bgp_mesh(net, 2)
        conf = render_bgpd_conf(a)
        assert "router bgp 1" in conf
        assert "hostname as1" in conf

    def test_lists_networks(self, net):
        (a, b) = make_bgp_mesh(net, 2)
        a.originate(Prefix.parse("192.168.0.0/24"))
        conf = render_bgpd_conf(a)
        assert " network 192.168.0.0/24" in conf

    def test_lists_neighbors_with_remote_as(self, net):
        (a, b) = make_bgp_mesh(net, 2)
        conf = render_bgpd_conf(a)
        assert "remote-as 2" in conf

    def test_mrai_rendered(self, net):
        (a, b) = make_bgp_mesh(net, 2)
        conf = render_bgpd_conf(a)
        assert "advertisement-interval 1" in conf

    def test_route_maps_attached(self, net):
        (a, b) = make_bgp_mesh(net, 2)
        conf = render_bgpd_conf(a)
        assert "route-map as2-in in" in conf
        assert "route-map as2-out out" in conf


class TestRouteMapRendering:
    def test_gao_rexford_renders_permit_and_deny(self):
        policy = gao_rexford_policy(Relationship.PEER)
        lines = render_route_map("peerX", policy)
        text = "\n".join(lines)
        assert "route-map peerX-in permit 10" in text
        assert "route-map peerX-out deny" in text


class TestExabgpConf:
    def test_exabgp_lists_all_peerings(self):
        exp = hybrid_experiment()
        conf = render_exabgp_conf(exp.speaker)
        assert conf.count("neighbor ") == len(exp.speaker.peerings())

    def test_exabgp_uses_member_local_as(self):
        exp = hybrid_experiment()
        conf = render_exabgp_conf(exp.speaker)
        assert "local-as 3;" in conf
        assert "local-as 4;" in conf

    def test_full_experiment_renders_for_every_router(self):
        exp = hybrid_experiment()
        from repro.bgp.router import BGPRouter

        for node in exp.as_nodes():
            if isinstance(node, BGPRouter):
                conf = render_bgpd_conf(node)
                assert f"router bgp {node.asn}" in conf
