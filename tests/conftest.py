"""Shared fixtures for the test suite."""

import pytest

from repro.bgp.router import BGPRouter
from repro.bgp.session import BGPTimers
from repro.eventsim import Simulator, TraceLog
from repro.net.network import Network


@pytest.fixture
def sim():
    return Simulator(seed=42)


@pytest.fixture
def trace(sim):
    return TraceLog(sim)


@pytest.fixture
def net():
    return Network(seed=42)


def make_bgp_mesh(net, n, *, timers=None, start=True):
    """Fully meshed legacy BGP routers as1..asN on ``net``."""
    timers = timers or BGPTimers(mrai=1.0)
    routers = []
    for i in range(1, n + 1):
        router = BGPRouter(net.sim, net.trace, f"as{i}", asn=i, timers=timers)
        net.add_node(router)
        routers.append(router)
    for i in range(n):
        for j in range(i + 1, n):
            link = net.add_link(routers[i], routers[j], latency=0.01)
            routers[i].add_peer(link)
            routers[j].add_peer(link)
    if start:
        for router in routers:
            router.start()
        net.sim.run_until_settled()
    return routers


@pytest.fixture
def bgp_pair(net):
    """Two established BGP peers."""
    return make_bgp_mesh(net, 2)


@pytest.fixture
def bgp_triangle(net):
    """Three establish-and-settled BGP peers in a triangle."""
    return make_bgp_mesh(net, 3)
