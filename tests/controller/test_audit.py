"""Tests for the controller's audit/repair consistency tools."""

import pytest

from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.sdn.flowtable import FlowAction, FlowRule
from repro.topology.builders import clique


def hybrid(seed=1):
    config = ExperimentConfig(
        seed=seed,
        timers=BGPTimers(mrai=1.0),
        controller=ControllerConfig(recompute_delay=0.2),
    )
    return Experiment(clique(5), sdn_members={4, 5}, config=config).start()


class TestAudit:
    def test_clean_after_convergence(self):
        exp = hybrid()
        exp.announce(1)
        exp.wait_converged()
        assert exp.controller.audit() == []

    def test_detects_lost_flow_mods(self):
        exp = hybrid()
        ctl = exp.net.link_between("controller", "as4")
        ctl.fail()
        exp.announce(1)
        exp.wait_converged()
        ctl.restore()
        problems = exp.controller.audit()
        assert problems
        assert any("missing rule" in p and "as4" in p for p in problems)

    def test_detects_orphaned_rules(self):
        exp = hybrid()
        switch = exp.node(4)
        stray = exp.new_event_prefix()
        switch.flow_table.install(
            FlowRule(match=stray, action=FlowAction.drop(),
                     priority=24, cookie=f"idr:{stray}")
        )
        problems = exp.controller.audit()
        assert any("orphaned" in p for p in problems)

    def test_detects_wrong_action(self):
        exp = hybrid()
        prefix = exp.announce(1)
        exp.wait_converged()
        switch = exp.node(4)
        # clobber the installed rule with a drop
        switch.flow_table.install(
            FlowRule(match=prefix, action=FlowAction.drop(),
                     priority=prefix.length, cookie=f"idr:{prefix}")
        )
        problems = exp.controller.audit()
        assert any(str(prefix) in p for p in problems)


class TestRepair:
    def test_repair_restores_lost_rules(self):
        exp = hybrid()
        ctl = exp.net.link_between("controller", "as4")
        ctl.fail()
        prefix = exp.announce(1)
        exp.wait_converged()
        ctl.restore()
        assert exp.controller.audit()
        sent = exp.controller.repair()
        assert sent > 0
        exp.wait_converged()
        assert exp.controller.audit() == []
        assert exp.node(4).lookup_route(prefix.host(0)) is not None

    def test_repair_removes_orphans(self):
        exp = hybrid()
        switch = exp.node(4)
        stray = exp.new_event_prefix()
        switch.flow_table.install(
            FlowRule(match=stray, action=FlowAction.drop(),
                     priority=24, cookie=f"idr:{stray}")
        )
        exp.controller.repair()
        exp.wait_converged()
        assert exp.controller.audit() == []

    def test_repair_on_clean_cluster_is_idempotent(self):
        exp = hybrid()
        exp.announce(1)
        exp.wait_converged()
        exp.controller.repair()
        exp.wait_converged()
        assert exp.controller.audit() == []
        assert exp.all_reachable()
