"""Unit tests for decision → flow-rule compilation."""

from repro.bgp.attrs import AsPath
from repro.controller.compiler import CompiledRule, compile_decisions
from repro.controller.graphs import ExternalRoute, Peering, SwitchGraph
from repro.controller.routing import MemberDecision
from repro.net.addr import Prefix

PFX = Prefix.parse("10.0.0.0/24")


def make_graph():
    graph = SwitchGraph()
    graph.add_member("a", 101)
    graph.add_member("b", 102)
    graph.add_intra_link("a", "b", "a--b")
    return graph


def egress_decision(member="a", link="a--ext"):
    route = ExternalRoute(
        peering=Peering(
            member=member, member_asn=101, external="ext",
            phys_link_name=link,
        ),
        prefix=PFX,
        as_path=AsPath.of(7),
    )
    return MemberDecision(member, "egress", route=route, distance=2.0)


class TestCompilation:
    def test_egress_rule_outputs_on_peering_link(self):
        rules, plan = compile_decisions(
            PFX, {"a": egress_decision()}, make_graph()
        )
        assert rules["a"].action_type == "output"
        assert rules["a"].out_link_name == "a--ext"
        assert len(plan.installs) == 1

    def test_forward_rule_uses_intra_link(self):
        decisions = {
            "a": MemberDecision("a", "forward", next_member="b", distance=3.0),
            "b": egress_decision("b", "b--ext"),
        }
        rules, plan = compile_decisions(PFX, decisions, make_graph())
        assert rules["a"].out_link_name == "a--b"

    def test_local_rule(self):
        decisions = {"a": MemberDecision("a", "local", distance=0.0)}
        rules, _ = compile_decisions(PFX, decisions, make_graph())
        assert rules["a"].action_type == "local"

    def test_unreachable_has_no_rule(self):
        decisions = {"a": MemberDecision("a", "unreachable")}
        rules, plan = compile_decisions(PFX, decisions, make_graph())
        assert rules == {}
        assert plan.empty

    def test_priority_is_prefix_length(self):
        rules, plan = compile_decisions(
            PFX, {"a": egress_decision()}, make_graph()
        )
        assert plan.installs[0][1].priority == 24


class TestDiffing:
    def test_unchanged_rule_sends_nothing(self):
        graph = make_graph()
        decisions = {"a": egress_decision()}
        rules, _ = compile_decisions(PFX, decisions, graph)
        _, plan = compile_decisions(PFX, decisions, graph, previous=rules)
        assert plan.empty

    def test_changed_rule_reinstalls(self):
        graph = make_graph()
        first, _ = compile_decisions(PFX, {"a": egress_decision()}, graph)
        changed = {
            "a": MemberDecision("a", "forward", next_member="b", distance=3.0),
            "b": egress_decision("b", "b--ext"),
        }
        _, plan = compile_decisions(PFX, changed, graph, previous=first)
        members = {m for m, _ in plan.installs}
        assert members == {"a", "b"}

    def test_lost_member_gets_removal(self):
        graph = make_graph()
        first, _ = compile_decisions(PFX, {"a": egress_decision()}, graph)
        _, plan = compile_decisions(
            PFX, {"a": MemberDecision("a", "unreachable")}, graph,
            previous=first,
        )
        assert len(plan.removals) == 1
        member, removal = plan.removals[0]
        assert member == "a" and removal.match == PFX

    def test_touched_members(self):
        graph = make_graph()
        decisions = {
            "a": MemberDecision("a", "forward", next_member="b", distance=3.0),
            "b": egress_decision("b", "b--ext"),
        }
        _, plan = compile_decisions(PFX, decisions, graph)
        assert plan.touched_members() == ["a", "b"]

    def test_flow_mod_cookie_tags_prefix(self):
        _, plan = compile_decisions(PFX, {"a": egress_decision()}, make_graph())
        assert plan.installs[0][1].cookie == f"idr:{PFX}"
