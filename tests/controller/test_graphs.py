"""Unit tests for the switch graph and the AS topology graph transform."""

import pytest

from repro.bgp.attrs import AsPath, Origin
from repro.bgp.policy import Relationship
from repro.controller.graphs import (
    DEST,
    ExternalRoute,
    Peering,
    SwitchGraph,
    build_as_topology,
)
from repro.net.addr import Prefix

PFX = Prefix.parse("10.0.0.0/24")


def make_switch_graph(members=("m1", "m2", "m3"), links=(("m1", "m2"), ("m2", "m3"))):
    graph = SwitchGraph()
    for i, name in enumerate(members, start=101):
        graph.add_member(name, i)
    for a, b in links:
        graph.add_intra_link(a, b, f"{a}--{b}")
    return graph


def peering(member, external="ext", member_asn=None, rel=Relationship.FLAT):
    asn = member_asn if member_asn is not None else 100 + int(member[1:])
    return Peering(
        member=member, member_asn=asn, external=external,
        phys_link_name=f"{member}--{external}", relationship=rel,
    )


def ext_route(member, path, external="ext", rel=Relationship.FLAT):
    return ExternalRoute(
        peering=peering(member, external, rel=rel),
        prefix=PFX,
        as_path=AsPath.from_iterable(path),
    )


class TestSwitchGraph:
    def test_members_sorted(self):
        graph = make_switch_graph()
        assert graph.members() == ["m1", "m2", "m3"]

    def test_single_sub_cluster_when_connected(self):
        graph = make_switch_graph()
        assert graph.sub_clusters() == [frozenset({"m1", "m2", "m3"})]

    def test_link_failure_splits_sub_clusters(self):
        graph = make_switch_graph()
        assert graph.set_link_state("m2", "m3", False) is True
        assert graph.sub_clusters() == [
            frozenset({"m1", "m2"}), frozenset({"m3"}),
        ]

    def test_set_state_unknown_link(self):
        graph = make_switch_graph()
        assert graph.set_link_state("m1", "m3", False) is False

    def test_restore_merges(self):
        graph = make_switch_graph()
        graph.set_link_state("m2", "m3", False)
        graph.set_link_state("m2", "m3", True)
        assert len(graph.sub_clusters()) == 1

    def test_intra_link_name_respects_state(self):
        graph = make_switch_graph()
        assert graph.intra_link_name("m1", "m2") == "m1--m2"
        graph.set_link_state("m1", "m2", False)
        assert graph.intra_link_name("m1", "m2") is None

    def test_up_neighbors(self):
        graph = make_switch_graph()
        assert graph.up_neighbors("m2") == ["m1", "m3"]
        graph.set_link_state("m1", "m2", False)
        assert graph.up_neighbors("m2") == ["m3"]

    def test_intra_link_needs_members(self):
        graph = make_switch_graph()
        with pytest.raises(KeyError):
            graph.add_intra_link("m1", "ghost", "x")

    def test_sub_cluster_of(self):
        graph = make_switch_graph()
        graph.set_link_state("m2", "m3", False)
        assert graph.sub_cluster_of("m3") == frozenset({"m3"})
        with pytest.raises(KeyError):
            graph.sub_cluster_of("ghost")


class TestBuildAsTopology:
    def test_intra_edges_bidirectional(self):
        topo = build_as_topology(make_switch_graph(), PFX, [])
        assert topo.graph.has_edge("m1", "m2")
        assert topo.graph.has_edge("m2", "m1")

    def test_egress_edge_weight_is_base_plus_path_len(self):
        topo = build_as_topology(
            make_switch_graph(), PFX, [ext_route("m1", (7, 8))],
        )
        assert topo.graph.edges["m1", DEST]["weight"] == 3.0

    def test_best_route_per_member_selected(self):
        shorter = ext_route("m1", (7,), external="extA")
        longer = ext_route("m1", (9, 8, 7), external="extB")
        topo = build_as_topology(make_switch_graph(), PFX, [longer, shorter])
        assert topo.egress_choice["m1"] == ("egress", shorter)

    def test_loop_avoidance_excludes_same_subcluster_paths(self):
        """Path containing a fellow sub-cluster member's ASN is unusable."""
        poisoned = ext_route("m1", (7, 102, 6))  # 102 = m2's ASN
        topo = build_as_topology(make_switch_graph(), PFX, [poisoned])
        assert not topo.graph.has_edge("m1", DEST)

    def test_other_subcluster_member_in_path_is_allowed(self):
        """Disjoint sub-clusters may reach each other via the legacy world."""
        graph = make_switch_graph()
        graph.set_link_state("m2", "m3", False)  # m3 now its own sub-cluster
        through_m3 = ext_route("m1", (7, 103, 6))  # 103 = m3's ASN
        topo = build_as_topology(graph, PFX, [through_m3])
        assert topo.graph.has_edge("m1", DEST)

    def test_local_origination_wins_over_egress(self):
        topo = build_as_topology(
            make_switch_graph(), PFX, [ext_route("m1", (7,))],
            originating_members=["m1"],
        )
        assert topo.egress_choice["m1"] == ("local", None)
        assert topo.graph.edges["m1", DEST]["weight"] == 0.0

    def test_unknown_originating_member_raises(self):
        with pytest.raises(KeyError):
            build_as_topology(
                make_switch_graph(), PFX, [], originating_members=["ghost"]
            )

    def test_routes_for_other_prefix_ignored(self):
        other = ExternalRoute(
            peering=peering("m1"),
            prefix=Prefix.parse("10.99.0.0/24"),
            as_path=AsPath.of(7),
        )
        topo = build_as_topology(make_switch_graph(), PFX, [other])
        assert not topo.graph.has_edge("m1", DEST)

    def test_customer_route_preferred_over_shorter_peer_route(self):
        customer = ext_route("m1", (7, 8), external="cust", rel=Relationship.CUSTOMER)
        peer = ext_route("m1", (9,), external="peer", rel=Relationship.PEER)
        topo = build_as_topology(make_switch_graph(), PFX, [customer, peer])
        assert topo.egress_choice["m1"][1].peering.external == "cust"

    def test_down_intra_link_missing_from_graph(self):
        graph = make_switch_graph()
        graph.set_link_state("m1", "m2", False)
        topo = build_as_topology(graph, PFX, [])
        assert not topo.graph.has_edge("m1", "m2")
