"""Integration-style tests for the IDR controller + cluster speaker,
driven through the framework's Experiment API (the natural harness)."""

import pytest

from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.builders import clique, line


def hybrid(net_seed=1, n=6, sdn=(4, 5, 6), recompute=0.2, mrai=1.0,
           topology=None):
    config = ExperimentConfig(
        seed=net_seed,
        timers=BGPTimers(mrai=mrai),
        controller=ControllerConfig(recompute_delay=recompute),
    )
    exp = Experiment(
        topology if topology is not None else clique(n),
        sdn_members=set(sdn), config=config,
    ).start()
    return exp


class TestClusterBootstrap:
    def test_speaker_sessions_establish(self):
        exp = hybrid()
        assert all(s.established for s in exp.speaker.sessions.values())

    def test_peerings_exist_per_member_external_pair(self):
        exp = hybrid()
        # clique(6) with members {4,5,6}: each member peers with 3 legacy
        assert len(exp.speaker.peerings()) == 9

    def test_speaker_speaks_with_member_identity(self):
        exp = hybrid()
        for link_id, session in exp.speaker.sessions.items():
            peering = exp.speaker.peering_of[link_id]
            assert session.local_asn == peering.member_asn

    def test_legacy_sees_member_asn_not_speaker(self):
        exp = hybrid()
        legacy = exp.node(1)
        member_names = {"as4", "as5", "as6"}
        for session in legacy.sessions.values():
            if session.link.other(legacy).name in member_names:
                assert session.peer_asn in (4, 5, 6)

    def test_flow_rules_installed_for_all_prefixes(self):
        exp = hybrid()
        for asn in (4, 5, 6):
            switch = exp.node(asn)
            # a rule (or local ownership) for every other AS's prefix
            for other in range(1, 7):
                if other == asn:
                    continue
                address = exp.as_prefix(other).host(0)
                assert switch.lookup_route(address) is not None, (asn, other)

    def test_full_reachability(self):
        exp = hybrid()
        assert exp.all_reachable()


class TestRouteSelection:
    def test_cluster_prefers_short_external_paths(self):
        exp = hybrid()
        controller = exp.controller
        prefix = exp.as_prefix(1)
        decision = controller.decisions[prefix]["as4"]
        # as4 peers directly with as1 -> direct egress, distance 2
        assert decision.kind == "egress"
        assert decision.route.peering.external == "as1"

    def test_intra_cluster_transit_when_no_direct_peering(self):
        # line: 1 - 2 - 3 - 4 with members {3, 4}: as4 has no external
        # peering at all for as1's prefix except via as3.
        exp = hybrid(n=4, sdn=(3, 4), topology=line(4))
        prefix = exp.as_prefix(1)
        decision = exp.controller.decisions[prefix]["as4"]
        assert decision.kind == "forward"
        assert decision.next_member == "as3"

    def test_advertised_path_contains_member_chain(self):
        exp = hybrid(n=4, sdn=(3, 4), topology=line(4))
        # as4 originates; the cluster advertises to as2 via as3's peering
        # with path [3, 4] (member chain), preserving AS identity.
        prefix = exp.as_prefix(4)
        legacy = exp.node(2)
        route = legacy.loc_rib.get(prefix)
        assert route is not None
        assert list(route.attrs.as_path) == [3, 4]


class TestEventHandling:
    def test_external_withdrawal_triggers_recompute(self):
        exp = hybrid()
        before = exp.controller.recomputations
        prefix = exp.announce(1)
        exp.wait_converged()
        exp.withdraw(1, prefix)
        exp.wait_converged()
        assert exp.controller.recomputations > before

    def test_withdrawn_prefix_removed_from_flow_tables(self):
        exp = hybrid()
        prefix = exp.announce(1)
        exp.wait_converged()
        exp.withdraw(1, prefix)
        exp.wait_converged()
        switch = exp.node(4)
        assert switch.lookup_route(prefix.host(0)) is None

    def test_member_origination_advertised_everywhere(self):
        exp = hybrid()
        prefix = exp.announce(5)  # member AS5 originates
        exp.wait_converged()
        for asn in (1, 2, 3):
            assert exp.node(asn).loc_rib.get(prefix) is not None

    def test_member_withdraw_cleans_legacy_ribs(self):
        exp = hybrid()
        prefix = exp.announce(5)
        exp.wait_converged()
        exp.withdraw(5, prefix)
        exp.wait_converged()
        for asn in (1, 2, 3):
            assert exp.node(asn).loc_rib.get(prefix) is None

    def test_withdraw_unoriginated_raises(self):
        exp = hybrid()
        with pytest.raises(KeyError):
            exp.controller.withdraw("as5", exp.as_prefix(1))

    def test_peering_link_failure_recovers_via_other_egress(self):
        exp = hybrid()
        prefix = exp.announce(1)
        exp.wait_converged()
        exp.fail_link(1, 4)  # as4 loses its direct egress to as1
        exp.wait_converged()
        walk = exp.reachable(4, 1)
        assert walk.reached, walk.reason

    def test_debounce_coalesces_event_bursts(self):
        exp = hybrid(recompute=1.0)
        before = exp.controller.recomputations
        # three origination events in quick succession -> one recompute
        exp.announce(1)
        exp.announce(2)
        exp.announce(3)
        exp.wait_converged()
        assert exp.controller.recomputations - before <= 2


class TestSubClusters:
    def test_intra_link_failure_splits_and_heals(self):
        # line 1-2-3-4 with members {2, 3}: failing 2-3 splits the cluster
        exp = hybrid(n=4, sdn=(2, 3), topology=line(4))
        assert len(exp.controller.switch_graph.sub_clusters()) == 1
        exp.fail_link(2, 3)
        exp.wait_converged()
        assert len(exp.controller.switch_graph.sub_clusters()) == 2
        exp.restore_link(2, 3)
        exp.wait_converged()
        assert len(exp.controller.switch_graph.sub_clusters()) == 1

    def test_known_prefixes_cover_originations_and_external(self):
        exp = hybrid()
        known = set(exp.controller.known_prefixes())
        for asn in range(1, 7):
            assert exp.as_prefix(asn) in known
