"""Edge-case tests for the IDR controller."""

import pytest

from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.sdn.messages import PacketIn
from repro.topology.builders import clique


def hybrid(seed=1, recompute=0.2, **controller_kwargs):
    config = ExperimentConfig(
        seed=seed,
        timers=BGPTimers(mrai=1.0),
        controller=ControllerConfig(
            recompute_delay=recompute, **controller_kwargs
        ),
    )
    return Experiment(clique(5), sdn_members={4, 5}, config=config).start()


class TestControlChannelFailure:
    def test_flow_mods_on_dead_control_link_are_logged(self):
        exp = hybrid()
        ctl = exp.net.link_between("controller", "as4")
        ctl.fail()
        prefix = exp.announce(1)
        exp.wait_converged()
        assert exp.net.trace.count("controller.control_link_down") >= 1
        # as5's control link still works: it got the rule
        assert exp.node(5).lookup_route(prefix.host(0)) is not None

    def test_switch_recovers_after_control_link_restore(self):
        exp = hybrid()
        ctl = exp.net.link_between("controller", "as4")
        ctl.fail()
        prefix = exp.announce(1)
        exp.wait_converged()
        ctl.restore()
        # trigger a recompute so missed rules are replayed: the diff
        # against the controller's compiled state is stale, so force a
        # fresh event on the prefix.
        exp.withdraw(1, prefix)
        exp.wait_converged()
        exp.announce(1, prefix)
        exp.wait_converged()
        assert exp.node(4).lookup_route(prefix.host(0)) is not None


class TestPacketIn:
    def test_packet_in_counted_by_controller(self):
        exp = hybrid()
        switch = exp.node(4)
        switch.packet_in_enabled = True
        from repro.net.addr import IPv4Address
        from repro.net.messages import Packet

        # destination nobody announced: table miss at the switch
        switch.forward_packet(
            Packet(
                src=IPv4Address.parse("10.0.0.1"),
                dst=IPv4Address.parse("203.0.113.9"),
                proto="raw",
            )
        )
        exp.net.sim.run(until=exp.now + 1.0)
        assert exp.controller.packet_ins >= 1


class TestPeeringPortStatus:
    def test_peering_link_failure_marks_all_prefixes_dirty(self):
        exp = hybrid()
        before = exp.controller.recomputations
        exp.fail_link(1, 4)
        exp.wait_converged()
        assert exp.controller.recomputations > before

    def test_switch_graph_untouched_by_peering_link(self):
        exp = hybrid()
        exp.fail_link(1, 4)  # external peering, not intra-cluster
        exp.wait_converged()
        assert len(exp.controller.switch_graph.sub_clusters()) == 1


class TestDirtyBookkeeping:
    def test_flush_now_forces_immediate_recompute(self):
        exp = hybrid(recompute=5.0)
        before = exp.controller.recomputations
        exp.controller.mark_dirty(exp.controller.known_prefixes())
        exp.controller.flush_now()
        assert exp.controller.recomputations == before + 1

    def test_empty_flush_is_noop(self):
        exp = hybrid()
        before = exp.controller.recomputations
        exp.controller.flush_now()
        assert exp.controller.recomputations == before

    def test_extend_on_burst_config_respected(self):
        exp = hybrid(extend_on_burst=True)
        assert exp.controller._recompute_timer._extend is True


class TestOriginationValidation:
    def test_originate_unknown_member_raises(self):
        exp = hybrid()
        with pytest.raises(KeyError):
            exp.controller.originate("ghost", exp.as_prefix(1))

    def test_double_origination_same_member_idempotent(self):
        exp = hybrid()
        prefix = exp.new_event_prefix()
        exp.controller.originate("as4", prefix)
        exp.controller.originate("as4", prefix)
        exp.wait_converged()
        exp.controller.withdraw("as4", prefix)
        exp.wait_converged()
        assert exp.node(1).loc_rib.get(prefix) is None

    def test_anycast_origination_from_two_members(self):
        """Both members originate: everyone routes to the nearer one."""
        exp = hybrid()
        prefix = exp.new_event_prefix()
        exp.controller.originate("as4", prefix)
        exp.controller.originate("as5", prefix)
        exp.wait_converged()
        for asn in (1, 2, 3):
            walk = exp.net.trace_path(exp.node(asn), prefix.host(0))
            assert walk.reached
            assert walk.hops[-1] in ("as4", "as5")
        # withdrawing one keeps the service up via the other
        exp.controller.withdraw("as4", prefix)
        exp.wait_converged()
        walk = exp.net.trace_path(exp.node(1), prefix.host(0))
        assert walk.reached and walk.hops[-1] == "as5"
