"""Unit + property tests for Dijkstra on the AS topology graph."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.bgp.attrs import AsPath
from repro.controller.graphs import (
    DEST,
    ExternalRoute,
    Peering,
    SwitchGraph,
    build_as_topology,
)
from repro.controller.routing import compute_decisions, decision_path
from repro.net.addr import Prefix

PFX = Prefix.parse("10.0.0.0/24")


def build(members, links, egresses, originations=()):
    """egresses: {member: path_len}."""
    graph = SwitchGraph()
    member_asn = {}
    for i, name in enumerate(sorted(members), start=101):
        graph.add_member(name, i)
        member_asn[name] = i
    for a, b in links:
        graph.add_intra_link(a, b, f"{a}--{b}")
    routes = []
    for member, path_len in egresses.items():
        routes.append(
            ExternalRoute(
                peering=Peering(
                    member=member,
                    member_asn=member_asn[member],
                    external=f"ext-{member}",
                    phys_link_name=f"{member}--ext",
                ),
                prefix=PFX,
                as_path=AsPath.from_iterable(range(1, path_len + 1)),
            )
        )
    topo = build_as_topology(graph, PFX, routes, originations)
    return graph, topo, compute_decisions(topo, graph.member_asn)


class TestDecisions:
    def test_direct_egress(self):
        _, _, decisions = build(["a"], [], {"a": 1})
        assert decisions["a"].kind == "egress"
        assert decisions["a"].distance == 2.0  # base 1 + path 1

    def test_forwarding_toward_egress(self):
        _, _, decisions = build(
            ["a", "b", "c"], [("a", "b"), ("b", "c")], {"c": 1}
        )
        assert decisions["a"].kind == "forward"
        assert decisions["a"].next_member == "b"
        assert decisions["b"].next_member == "c"
        assert decisions["c"].kind == "egress"

    def test_nearest_egress_chosen(self):
        _, _, decisions = build(
            ["a", "b", "c"], [("a", "b"), ("b", "c")], {"a": 1, "c": 1}
        )
        assert decisions["b"].kind == "forward"
        # equal distance both ways: deterministic lexicographic choice
        assert decisions["b"].next_member == "a"

    def test_shorter_external_path_beats_near_egress(self):
        _, _, decisions = build(
            ["a", "b"], [("a", "b")], {"a": 5, "b": 1}
        )
        # a's own egress costs 6; via b costs 1 + 2 = 3.
        assert decisions["a"].kind == "forward"

    def test_local_origination(self):
        _, _, decisions = build(
            ["a", "b"], [("a", "b")], {}, originations=["a"]
        )
        assert decisions["a"].kind == "local"
        assert decisions["b"].kind == "forward"

    def test_unreachable_members(self):
        _, _, decisions = build(["a", "b"], [], {"a": 1})
        assert decisions["a"].reachable
        assert decisions["b"].kind == "unreachable"

    def test_as_chain_tracks_member_asns(self):
        _, _, decisions = build(
            ["a", "b", "c"], [("a", "b"), ("b", "c")], {"c": 1}
        )
        assert decisions["a"].as_chain == (101, 102, 103)
        assert decisions["c"].as_chain == (103,)

    def test_decision_path(self):
        _, _, decisions = build(
            ["a", "b", "c"], [("a", "b"), ("b", "c")], {"c": 1}
        )
        assert decision_path("a", decisions) == ["a", "b", "c"]


class TestDeterminism:
    def test_equal_cost_tie_breaks_lexicographically(self):
        _, _, decisions = build(
            ["m", "x", "y", "z"],
            [("m", "x"), ("m", "y"), ("x", "z"), ("y", "z")],
            {"z": 1},
        )
        assert decisions["m"].next_member == "x"

    def test_rerun_identical(self):
        results = [
            build(
                ["a", "b", "c", "d"],
                [("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")],
                {"c": 2, "d": 2},
            )[2]
            for _ in range(3)
        ]
        assert results[0] == results[1] == results[2]


# ----------------------------------------------------------------------
# property: distances match networkx shortest paths on the same graph
# ----------------------------------------------------------------------
@st.composite
def random_cluster(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    members = [f"m{i}" for i in range(n)]
    links = []
    for i in range(1, n):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        links.append((members[i], members[j]))  # spanning tree: connected
    extra = draw(st.integers(min_value=0, max_value=3))
    for _ in range(extra):
        a = draw(st.sampled_from(members))
        b = draw(st.sampled_from(members))
        if a != b and (a, b) not in links and (b, a) not in links:
            links.append((a, b))
    egress_members = draw(
        st.sets(st.sampled_from(members), min_size=1, max_size=n)
    )
    egresses = {
        m: draw(st.integers(min_value=1, max_value=6)) for m in egress_members
    }
    return members, links, egresses


@given(random_cluster())
@settings(max_examples=60, deadline=None)
def test_distances_match_networkx(cluster):
    members, links, egresses = cluster
    _, topo, decisions = build(members, links, egresses)
    expected = nx.single_source_dijkstra_path_length(
        topo.graph.reverse(copy=True), DEST, weight="weight"
    )
    for member in members:
        if member in expected:
            assert decisions[member].reachable
            assert abs(decisions[member].distance - expected[member]) < 1e-9
        else:
            assert not decisions[member].reachable


@given(random_cluster())
@settings(max_examples=60, deadline=None)
def test_forwarding_paths_terminate_at_egress(cluster):
    members, links, egresses = cluster
    _, _, decisions = build(members, links, egresses)
    for member in members:
        if not decisions[member].reachable:
            continue
        path = decision_path(member, decisions)
        assert len(path) <= len(members)
        last = decisions[path[-1]]
        assert last.kind in ("egress", "local")


@given(random_cluster())
@settings(max_examples=60, deadline=None)
def test_distance_decreases_along_path(cluster):
    members, links, egresses = cluster
    _, _, decisions = build(members, links, egresses)
    for member in members:
        decision = decisions[member]
        if decision.kind == "forward":
            assert decisions[decision.next_member].distance < decision.distance
