"""Focused tests for the cluster BGP speaker's relay behaviour."""

from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.builders import clique


def hybrid(seed=1, mrai=1.0):
    config = ExperimentConfig(
        seed=seed,
        timers=BGPTimers(mrai=mrai),
        controller=ControllerConfig(recompute_delay=0.2),
    )
    return Experiment(clique(4), sdn_members={3, 4}, config=config).start()


class TestSpeakerRibs:
    def test_external_routes_snapshot(self):
        exp = hybrid()
        routes = exp.speaker.external_routes()
        assert routes
        prefixes = {str(r.prefix) for r in routes}
        assert str(exp.as_prefix(1)) in prefixes

    def test_external_routes_filtered_by_prefix(self):
        exp = hybrid()
        prefix = exp.as_prefix(1)
        routes = exp.speaker.external_routes(prefix)
        assert routes and all(r.prefix == prefix for r in routes)

    def test_member_asn_loop_check_on_import(self):
        """Paths containing the peering member's own ASN are dropped."""
        exp = hybrid()
        for route in exp.speaker.external_routes():
            assert not route.as_path.contains(route.peering.member_asn)

    def test_known_external_prefixes_sorted(self):
        exp = hybrid()
        prefixes = exp.speaker.known_external_prefixes()
        assert prefixes == sorted(prefixes)


class TestPeeringFailure:
    def test_phys_link_down_tears_speaker_session(self):
        exp = hybrid()
        target = None
        for link_id, peering in exp.speaker.peering_of.items():
            if peering.member == "as3" and peering.external == "as1":
                target = exp.speaker.sessions[link_id]
        assert target is not None and target.established
        exp.fail_link(1, 3)
        exp.wait_converged()
        assert not target.established

    def test_phys_link_restore_reestablishes(self):
        exp = hybrid()
        exp.fail_link(1, 3)
        exp.wait_converged()
        exp.restore_link(1, 3)
        exp.wait_converged()
        established = [
            s for lid, s in exp.speaker.sessions.items()
            if exp.speaker.peering_of[lid].member == "as3"
            and exp.speaker.peering_of[lid].external == "as1"
        ]
        assert established and established[0].established

    def test_lost_peering_routes_removed(self):
        exp = hybrid()
        exp.fail_link(1, 3)
        exp.wait_converged()
        for route in exp.speaker.external_routes():
            assert not (
                route.peering.member == "as3"
                and route.peering.external == "as1"
            )

    def test_relay_link_failure_drops_session_too(self):
        exp = hybrid()
        relay = exp.net.link_between("speaker", "as3")
        assert relay is not None
        relay.fail()
        exp.wait_converged()
        session = exp.speaker.sessions[relay.link_id]
        assert not session.established


class TestAdvertisementDiffing:
    def test_no_duplicate_announcements(self):
        """The speaker's Adj-RIB-Out suppresses identical re-sends."""
        exp = hybrid()
        t0 = exp.now
        # force a recompute with no route changes
        exp.controller.mark_dirty(exp.controller.known_prefixes())
        exp.wait_converged()
        announces = [
            r for r in exp.net.trace.filter(
                category="bgp.update.tx", node="speaker", since=t0
            )
            if r.data["announced"]
        ]
        assert announces == []
