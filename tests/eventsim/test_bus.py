"""Unit tests for the instrumentation bus (publish/subscribe core)."""

import pytest

from repro.eventsim import (
    InstrumentationBus,
    Simulator,
    TraceLog,
    TraceRecord,
    bus_of,
)


@pytest.fixture
def bus(sim):
    return InstrumentationBus(sim)


class TestPublishing:
    def test_record_reaches_subscriber(self, bus):
        got = []
        bus.subscribe(got.append)
        bus.record("bgp.update.tx", "as1", peer="as2")
        assert len(got) == 1
        rec = got[0]
        assert rec.category == "bgp.update.tx"
        assert rec.node == "as1"
        assert rec.data == {"peer": "as2"}

    def test_record_stamped_with_virtual_time(self, sim, bus):
        got = []
        bus.subscribe(got.append)
        sim.schedule_at(7.5, lambda: bus.record("fib.change", "as1"))
        sim.run()
        assert got[0].time == 7.5

    def test_counts_maintained_without_subscribers(self, bus):
        bus.record("bgp.update.tx", "as1")
        bus.record("bgp.update.tx", "as1")
        bus.record("bgp.update.rx", "as2")
        assert bus.counts["bgp.update.tx"] == 2
        assert bus.count("bgp.update") == 3
        assert bus.records_published == 3

    def test_count_uses_prefix_semantics(self, bus):
        bus.record("bgp.update.tx", "as1")
        bus.record("bgp.updatex", "as1")  # not nested under bgp.update
        assert bus.count("bgp.update") == 1

    def test_no_record_object_built_without_interest(self, bus):
        # A filtered-out category never constructs a TraceRecord; the
        # only observable effect is the count.
        got = []
        bus.subscribe(got.append, categories=("fib.change",))
        bus.record("bgp.update.tx", "as1")
        assert got == []
        assert bus.count("bgp.update.tx") == 1

    def test_publish_prebuilt_record(self, bus):
        got = []
        bus.subscribe(got.append)
        rec = TraceRecord(3.0, "bgp.decision", "as9")
        bus.publish(rec)
        assert got == [rec]
        assert bus.counts["bgp.decision"] == 1

    def test_clear_counts_keeps_subscribers(self, bus):
        got = []
        bus.subscribe(got.append)
        bus.record("fib.change", "as1")
        bus.clear_counts()
        assert bus.counts == {}
        bus.record("fib.change", "as1")
        assert len(got) == 2


class TestFiltering:
    def test_category_prefix_filter(self, bus):
        got = []
        bus.subscribe(got.append, categories=("bgp.update",))
        bus.record("bgp.update.tx", "as1")
        bus.record("bgp.update.rx", "as1")
        bus.record("bgp.decision", "as1")
        assert [r.category for r in got] == ["bgp.update.tx", "bgp.update.rx"]

    def test_exact_category_matches_itself(self, bus):
        got = []
        bus.subscribe(got.append, categories=("fib.change",))
        bus.record("fib.change", "as1")
        assert len(got) == 1

    def test_multiple_subscribers_independent_filters(self, bus):
        updates, decisions = [], []
        bus.subscribe(updates.append, categories=("bgp.update",))
        bus.subscribe(decisions.append, categories=("bgp.decision",))
        bus.record("bgp.update.tx", "as1")
        bus.record("bgp.decision", "as1")
        assert len(updates) == 1 and len(decisions) == 1

    def test_subscribe_after_publishing_invalidates_routes(self, bus):
        bus.record("bgp.update.tx", "as1")  # caches the empty route
        got = []
        bus.subscribe(got.append)
        bus.record("bgp.update.tx", "as1")
        assert len(got) == 1

    def test_unsubscribe_stops_delivery(self, bus):
        got = []
        handle = bus.subscribe(got.append)
        bus.record("fib.change", "as1")
        bus.unsubscribe(handle)
        bus.record("fib.change", "as1")
        assert len(got) == 1

    def test_unsubscribe_is_idempotent(self, bus):
        handle = bus.subscribe(lambda r: None)
        bus.unsubscribe(handle)
        bus.unsubscribe(handle)  # no error
        assert bus.subscriptions == []


class TestSampling:
    def test_sampling_stride(self, bus):
        got = []
        bus.subscribe(got.append, sample=3)
        for _ in range(9):
            bus.record("fib.change", "as1")
        # records 1, 4, 7 (first match always delivers)
        assert len(got) == 3

    def test_first_match_always_delivered(self, bus):
        got = []
        bus.subscribe(got.append, sample=100)
        bus.record("fib.change", "as1")
        assert len(got) == 1

    def test_sampling_counts_only_matching_records(self, bus):
        got = []
        bus.subscribe(got.append, categories=("fib.change",), sample=2)
        for _ in range(4):
            bus.record("bgp.update.tx", "as1")  # never matches
            bus.record("fib.change", "as1")
        assert len(got) == 2

    def test_invalid_stride_rejected(self, bus):
        with pytest.raises(ValueError):
            bus.subscribe(lambda r: None, sample=0)


class TestBusOf:
    def test_bus_passthrough(self, bus):
        assert bus_of(bus) is bus

    def test_tracelog_unwraps_to_bus(self, sim):
        trace = TraceLog(sim)
        assert bus_of(trace) is trace.bus

    def test_rejects_other_objects(self):
        with pytest.raises(TypeError):
            bus_of(object())
