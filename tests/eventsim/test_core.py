"""Unit tests for the discrete-event kernel."""

import pytest

from repro.eventsim import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self, sim):
        order = []
        for tag in ("x", "y", "z"):
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["x", "y", "z"]

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(5.5, lambda: None)
        sim.run()
        assert sim.now == 5.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_event_can_schedule_more_events(self, sim):
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth > 0:
                sim.schedule(1.0, lambda: chain(depth - 1))

        sim.schedule(1.0, lambda: chain(2))
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sim):
        ran = []
        event = sim.schedule(1.0, lambda: ran.append(1))
        sim.cancel(event)
        sim.run()
        assert ran == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending_foreground() == 0

    def test_cancel_updates_foreground_count(self, sim):
        event = sim.schedule(1.0, lambda: None)
        assert sim.pending_foreground() == 1
        sim.cancel(event)
        assert sim.pending_foreground() == 0


class TestRunUntil:
    def test_run_until_stops_clock_at_bound(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=3.0)
        assert sim.now == 3.0
        assert sim.pending_foreground() == 1

    def test_run_until_executes_due_events(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]

    def test_empty_queue_advances_to_until(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_guards_livelock(self, sim):
        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestRunUntilSettled:
    def test_settles_when_only_background_remains(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(100.0, lambda: None, background=True)
        settled_at = sim.run_until_settled()
        assert settled_at == 1.0

    def test_background_before_settle_point_still_runs(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("fg"))
        sim.schedule(1.0, lambda: order.append("bg"), background=True)
        sim.run_until_settled()
        assert order == ["bg", "fg"]

    def test_new_foreground_from_callback_extends_run(self, sim):
        seen = []
        sim.schedule(
            1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now))
        )
        sim.run_until_settled()
        assert seen == [2.0]

    def test_horizon_violation_raises(self, sim):
        sim.schedule(1000.0, lambda: None, label="too-late")
        with pytest.raises(SimulationError, match="too-late"):
            sim.run_until_settled(horizon=10.0)

    def test_settled_with_empty_queue(self, sim):
        assert sim.run_until_settled() == 0.0


class TestRng:
    def test_streams_are_deterministic_across_instances(self):
        a = Simulator(seed=7).rng("x").random()
        b = Simulator(seed=7).rng("x").random()
        assert a == b

    def test_streams_are_independent(self):
        sim = Simulator(seed=7)
        first = sim.rng("x").random()
        sim2 = Simulator(seed=7)
        sim2.rng("y").random()  # consuming another stream...
        assert sim2.rng("x").random() == first  # ...does not perturb x

    def test_different_seeds_differ(self):
        assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng("x").random()

    def test_same_stream_is_cached(self, sim):
        assert sim.rng("x") is sim.rng("x")
