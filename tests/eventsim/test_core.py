"""Unit tests for the discrete-event kernel."""

import pytest

from repro.eventsim import (
    SCHEDULERS,
    CalendarQueue,
    SimulationError,
    Simulator,
)
from repro.eventsim.core import Event


@pytest.fixture(params=SCHEDULERS)
def sim(request):
    """Every kernel test runs under both pending-set structures —
    behavior (not just results) must be scheduler-independent."""
    return Simulator(seed=42, scheduler=request.param)


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_schedule_order(self, sim):
        order = []
        for tag in ("x", "y", "z"):
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["x", "y", "z"]

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(5.5, lambda: None)
        sim.run()
        assert sim.now == 5.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_event_can_schedule_more_events(self, sim):
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth > 0:
                sim.schedule(1.0, lambda: chain(depth - 1))

        sim.schedule(1.0, lambda: chain(2))
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_events_processed_counter(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sim):
        ran = []
        event = sim.schedule(1.0, lambda: ran.append(1))
        sim.cancel(event)
        sim.run()
        assert ran == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending_foreground() == 0

    def test_cancel_updates_foreground_count(self, sim):
        event = sim.schedule(1.0, lambda: None)
        assert sim.pending_foreground() == 1
        sim.cancel(event)
        assert sim.pending_foreground() == 0


class TestRunUntil:
    def test_run_until_stops_clock_at_bound(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=3.0)
        assert sim.now == 3.0
        assert sim.pending_foreground() == 1

    def test_run_until_executes_due_events(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]

    def test_empty_queue_advances_to_until(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_guards_livelock(self, sim):
        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestRunUntilSettled:
    def test_settles_when_only_background_remains(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(100.0, lambda: None, background=True)
        settled_at = sim.run_until_settled()
        assert settled_at == 1.0

    def test_background_before_settle_point_still_runs(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("fg"))
        sim.schedule(1.0, lambda: order.append("bg"), background=True)
        sim.run_until_settled()
        assert order == ["bg", "fg"]

    def test_new_foreground_from_callback_extends_run(self, sim):
        seen = []
        sim.schedule(
            1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now))
        )
        sim.run_until_settled()
        assert seen == [2.0]

    def test_horizon_violation_raises(self, sim):
        sim.schedule(1000.0, lambda: None, label="too-late")
        with pytest.raises(SimulationError, match="too-late"):
            sim.run_until_settled(horizon=10.0)

    def test_settled_with_empty_queue(self, sim):
        assert sim.run_until_settled() == 0.0


class TestSchedulerKnob:
    def test_default_is_heap(self):
        assert Simulator(seed=0).scheduler == "heap"

    def test_calendar_selectable(self):
        assert Simulator(seed=0, scheduler="calendar").scheduler == "calendar"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError, match="scheduler"):
            Simulator(seed=0, scheduler="fibonacci")


class TestTieBreak:
    """Regression pin: duplicate timestamps pop in scheduling order.

    Both schedulers order events by ``(time, seq)``; this is the
    determinism contract every digest fixture rests on, so the exact
    pop order for a burst of same-time events is pinned here for each
    scheduler independently (the shared ``sim`` fixture parametrizes).
    """

    def test_duplicate_timestamps_pop_in_seq_order(self, sim):
        order = []
        # interleave two timestamps, scheduled out of time order
        for tag in range(8):
            sim.schedule(2.0 if tag % 2 else 1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_event_ordering_is_time_then_seq(self):
        a = Event(1.0, 5, lambda: None)
        b = Event(1.0, 6, lambda: None)
        c = Event(0.5, 7, lambda: None)
        assert a < b and c < a

    def test_zero_delay_self_schedules_run_fifo(self, sim):
        order = []

        def chain(tag, depth):
            order.append(tag)
            if depth:
                sim.schedule(0.0, lambda: chain(tag, depth - 1))

        sim.schedule(0.0, lambda: chain("a", 2))
        sim.schedule(0.0, lambda: chain("b", 2))
        sim.run()
        # each round of the same-instant cascade alternates in seq order
        assert order == ["a", "b", "a", "b", "a", "b"]


class TestCalendarQueue:
    """Direct coverage of the calendar structure (resize, wrap, skip)."""

    @staticmethod
    def _events(times):
        return [Event(t, seq, lambda: None) for seq, t in enumerate(times)]

    def test_pops_in_time_seq_order(self):
        queue = CalendarQueue()
        events = self._events([3.0, 1.0, 2.0, 1.0, 2.0])
        for event in events:
            queue.push(event)
        popped = [queue.pop() for _ in range(5)]
        assert popped == sorted(events)
        assert queue.pop() is None

    def test_grow_resize_preserves_order(self):
        queue = CalendarQueue(nbuckets=CalendarQueue.MIN_BUCKETS)
        events = self._events([i * 0.37 % 7.0 for i in range(500)])
        for event in events:
            queue.push(event)
        assert queue._nbuckets > CalendarQueue.MIN_BUCKETS
        assert [queue.pop() for _ in range(500)] == sorted(events)

    def test_shrink_resize_preserves_order(self):
        queue = CalendarQueue()
        events = self._events([i * 0.11 for i in range(400)])
        for event in events:
            queue.push(event)
        drained = [queue.pop() for _ in range(400)]
        assert drained == sorted(events)
        # the drain shrank the bucket array back down
        assert queue._nbuckets < 400

    def test_far_future_event_found_after_fruitless_year(self):
        queue = CalendarQueue(width=0.001)
        near = Event(0.0005, 0, lambda: None)
        far = Event(9_999.0, 1, lambda: None)
        queue.push(near)
        queue.push(far)
        assert queue.pop() is near
        # finding this one requires the full-scan fallback: its day is
        # thousands of bucket-years past the last popped time.
        assert queue.pop() is far

    def test_cancelled_events_are_skipped(self):
        queue = CalendarQueue()
        keep = Event(2.0, 1, lambda: None)
        drop = Event(1.0, 0, lambda: None)
        queue.push(drop)
        queue.push(keep)
        drop.cancelled = True
        assert queue.peek() is keep
        assert queue.pop() is keep
        assert queue.pop() is None

    def test_resize_purges_cancelled_without_losing_live(self):
        queue = CalendarQueue(nbuckets=CalendarQueue.MIN_BUCKETS)
        events = self._events([i * 0.53 % 11.0 for i in range(300)])
        for event in events:
            queue.push(event)
        cancelled = events[::3]
        for event in cancelled:
            event.cancelled = True
        live = sorted(e for e in events if not e.cancelled)
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event)
        assert popped == live

    def test_peek_matches_subsequent_pop(self):
        queue = CalendarQueue()
        for event in self._events([5.0, 1.0, 3.0]):
            queue.push(event)
        while True:
            head = queue.peek()
            if head is None:
                assert queue.pop() is None
                break
            assert queue.pop() is head

    def test_push_smaller_than_memoized_head(self):
        queue = CalendarQueue()
        late = Event(5.0, 0, lambda: None)
        queue.push(late)
        assert queue.peek() is late  # memoizes the head
        early = Event(1.0, 1, lambda: None)
        queue.push(early)
        assert queue.peek() is early
        assert queue.pop() is early
        assert queue.pop() is late


class TestRng:
    def test_streams_are_deterministic_across_instances(self):
        a = Simulator(seed=7).rng("x").random()
        b = Simulator(seed=7).rng("x").random()
        assert a == b

    def test_streams_are_independent(self):
        sim = Simulator(seed=7)
        first = sim.rng("x").random()
        sim2 = Simulator(seed=7)
        sim2.rng("y").random()  # consuming another stream...
        assert sim2.rng("x").random() == first  # ...does not perturb x

    def test_different_seeds_differ(self):
        assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng("x").random()

    def test_same_stream_is_cached(self, sim):
        assert sim.rng("x") is sim.rng("x")
