"""Unit tests for the online metrics registry."""

import pytest

from repro.eventsim import (
    Counter,
    Gauge,
    Histogram,
    InstrumentationBus,
    MetricsRegistry,
    Simulator,
    format_snapshot,
    merge_snapshots,
)
from repro.eventsim.metrics import parse_key


class TestPrimitives:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.dec(4)
        g.inc()
        assert g.value == 7

    def test_histogram_moments(self):
        h = Histogram()
        for v in (0.001, 0.01, 0.1):
            h.observe(v)
        assert h.count == 3
        assert h.minimum == 0.001
        assert h.maximum == 0.1
        assert h.mean == pytest.approx(0.037)

    def test_histogram_buckets_cumulative_style(self):
        h = Histogram(buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(500.0)  # over the top bound
        d = h.to_dict()
        assert d["buckets"] == {"le_1": 1, "le_10": 1, "inf": 1}

    def test_empty_histogram_dict(self):
        d = Histogram().to_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", node="a") is not reg.counter("x", node="b")

    def test_label_keys_are_order_independent(self):
        reg = MetricsRegistry()
        a = reg.counter("m", node="n1", category="c1")
        b = reg.counter("m", category="c1", node="n1")
        assert a is b

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_clear_drops_metrics(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.clear()
        assert reg.snapshot()["counters"] == {}


class TestBusObservation:
    def test_records_total_by_category(self, sim):
        bus = InstrumentationBus(sim)
        reg = MetricsRegistry()
        reg.observe_bus(bus)
        bus.record("bgp.update.tx", "as1")
        bus.record("bgp.update.tx", "as2")
        bus.record("fib.change", "as1")
        snap = reg.snapshot()
        assert snap["counters"]["records_total{category=bgp.update.tx}"] == 2
        assert snap["counters"]["records_total{category=fib.change}"] == 1

    def test_per_node_counters(self, sim):
        bus = InstrumentationBus(sim)
        reg = MetricsRegistry()
        reg.observe_bus(bus, per_node=True)
        bus.record("fib.change", "as1")
        snap = reg.snapshot()
        assert (
            "node_records_total{category=fib.change,node=as1}"
            in snap["counters"]
        )

    def test_double_observe_rejected(self, sim):
        bus = InstrumentationBus(sim)
        reg = MetricsRegistry()
        reg.observe_bus(bus)
        with pytest.raises(RuntimeError):
            reg.observe_bus(bus)

    def test_detach_stops_counting(self, sim):
        bus = InstrumentationBus(sim)
        reg = MetricsRegistry()
        reg.observe_bus(bus)
        bus.record("fib.change", "as1")
        reg.detach()
        bus.record("fib.change", "as1")
        assert reg.snapshot()["counters"] == {
            "records_total{category=fib.change}": 1.0
        }


class TestDispatchProfiling:
    def test_profile_counts_every_event(self):
        sim = Simulator(seed=1)
        reg = MetricsRegistry()
        reg.profile_simulator(sim)
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.run()
        snap = reg.snapshot()
        assert snap["counters"]["sim.events_total"] == 3
        assert snap["histograms"]["sim.dispatch_seconds"]["count"] == 3

    def test_detach_removes_hook(self):
        sim = Simulator(seed=1)
        reg = MetricsRegistry()
        reg.profile_simulator(sim)
        reg.detach()
        sim.schedule(1.0, lambda: None)
        sim.run()
        # the metrics exist (created at install time) but saw no events
        snap = reg.snapshot()
        assert snap["counters"]["sim.events_total"] == 0
        assert snap["histograms"]["sim.dispatch_seconds"]["count"] == 0


class TestSnapshotTools:
    def test_merge_adds_counters_and_histograms(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.histogram("h").observe(1.0)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.histogram("h").observe(3.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c"] == 5.0
        h = merged["histograms"]["h"]
        assert h["count"] == 2
        assert h["mean"] == pytest.approx(2.0)
        assert h["min"] == 1.0 and h["max"] == 3.0

    def test_merge_gauges_last_wins(self):
        snaps = [
            {"counters": {}, "gauges": {"g": 1.0}, "histograms": {}},
            {"counters": {}, "gauges": {"g": 9.0}, "histograms": {}},
        ]
        assert merge_snapshots(snaps)["gauges"]["g"] == 9.0

    def test_merge_skips_none_snapshots(self):
        merged = merge_snapshots([None, {}, {"counters": {"c": 1.0}}])
        assert merged["counters"] == {"c": 1.0}

    def test_format_snapshot_readable(self):
        reg = MetricsRegistry()
        reg.counter("records_total", category="bgp.update.tx").inc(5)
        text = format_snapshot(reg.snapshot())
        assert "records_total" in text
        assert "bgp.update.tx" in text


class TestLabelEscaping:
    def test_adversarial_label_value_cannot_collide(self):
        reg = MetricsRegistry()
        tricky = reg.counter("x", a="1,b=2")
        honest = reg.counter("x", a="1", b="2")
        assert tricky is not honest
        tricky.inc(1)
        honest.inc(10)
        snap = reg.snapshot()["counters"]
        assert sorted(snap.values()) == [1.0, 10.0]

    def test_brace_and_backslash_values_stay_distinct(self):
        reg = MetricsRegistry()
        a = reg.counter("x", k="v}")
        b = reg.counter("x", k="v\\}")
        assert a is not b


class TestParseKey:
    """parse_key must exactly invert the registry's flat-key encoding —
    the /metrics exposition rebuilds label sets from these keys."""

    def test_plain_name_has_no_labels(self):
        assert parse_key("events_total") == ("events_total", {})

    def test_round_trips_sorted_labels(self):
        assert parse_key('x{a=1,b=2}') == ("x", {"a": "1", "b": "2"})

    def test_round_trips_adversarial_values(self):
        reg = MetricsRegistry()
        nasty = {"a": "1,b=2", "k": "v\\}", "e": "="}
        reg.counter("x", **nasty).inc()
        (key,) = reg.snapshot()["counters"]
        assert parse_key(key) == ("x", nasty)

    def test_collision_pair_parses_to_distinct_labels(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1,b=2").inc(1)
        reg.counter("x", a="1", b="2").inc(10)
        parsed = sorted(
            (parse_key(key)[1] for key in reg.snapshot()["counters"]),
            key=str,
        )
        assert parsed == [{"a": "1", "b": "2"}, {"a": "1,b=2"}]

    def test_malformed_keys_rejected(self):
        for bad in ("x{a=1", "x{a}", "x{,}"):
            with pytest.raises(ValueError):
                parse_key(bad)


class TestMergeEdgeCases:
    def test_merge_tolerates_missing_and_none_sections(self):
        snaps = [
            {"counters": {"c": 1.0}},  # no gauges/histograms keys
            {"counters": None, "gauges": None, "histograms": None},
            {"histograms": {"h": {"count": 1, "sum": 2.0, "min": 2.0,
                                  "max": 2.0, "mean": 2.0,
                                  "buckets": {"le_5": 1}}}},
        ]
        merged = merge_snapshots(snaps)
        assert merged["counters"] == {"c": 1.0}
        assert merged["histograms"]["h"]["count"] == 1

    def test_merge_histogram_with_none_buckets(self):
        snaps = [
            {"histograms": {"h": {"count": 1, "sum": 1.0, "min": 1.0,
                                  "max": 1.0, "mean": 1.0,
                                  "buckets": None}}},
            {"histograms": {"h": {"count": 1, "sum": 3.0, "min": 3.0,
                                  "max": 3.0, "mean": 3.0,
                                  "buckets": {"inf": 1}}}},
        ]
        h = merge_snapshots(snaps)["histograms"]["h"]
        assert h["count"] == 2
        assert h["mean"] == pytest.approx(2.0)
        assert h["buckets"] == {"inf": 1}

    def test_merge_mismatched_bucket_boundaries_sorted(self):
        a = {"histograms": {"h": {"count": 2, "sum": 2.0, "min": 0.5,
                                  "max": 1.5, "mean": 1.0,
                                  "buckets": {"le_1": 1, "inf": 1}}}}
        b = {"histograms": {"h": {"count": 2, "sum": 20.0, "min": 5.0,
                                  "max": 15.0, "mean": 10.0,
                                  "buckets": {"le_10": 1, "inf": 1}}}}
        h = merge_snapshots([a, b])["histograms"]["h"]
        # counts stay attributed to their own bound; order is numeric
        assert list(h["buckets"]) == ["le_1", "le_10", "inf"]
        assert h["buckets"] == {"le_1": 1, "le_10": 1, "inf": 2}
        assert h["min"] == 0.5 and h["max"] == 15.0

    def test_merge_empty_histogram_keeps_none_extremes(self):
        snaps = [{"histograms": {"h": {"count": 0, "sum": 0.0, "min": None,
                                       "max": None, "mean": 0.0,
                                       "buckets": {}}}}]
        h = merge_snapshots(snaps)["histograms"]["h"]
        assert h["min"] is None and h["max"] is None
        assert h["count"] == 0

    def test_format_snapshot_handles_empty_histogram(self):
        snap = {
            "counters": {},
            "gauges": {},
            "histograms": {"h": {"count": 0, "sum": 0.0, "min": None,
                                 "max": None, "mean": 0.0, "buckets": {}}},
        }
        text = format_snapshot(snap)  # must not raise on None min/max
        # empty histograms are skipped rather than rendered as garbage
        assert "n=0" not in text
        assert "min=" not in text and "max=" not in text

    def test_format_snapshot_none_extremes_with_count(self):
        snap = {
            "histograms": {"h": {"count": 3, "sum": 6.0, "min": None,
                                 "max": None, "mean": 2.0, "buckets": {}}},
        }
        text = format_snapshot(snap)
        assert "n=3" in text and "mean=2" in text
        assert "min=" not in text and "max=" not in text

    def test_format_snapshot_handles_missing_mean(self):
        snap = {
            "histograms": {"h": {"count": 2, "sum": 4.0, "min": 1.0,
                                 "max": 3.0, "buckets": {}}},
        }
        text = format_snapshot(snap)
        assert "mean=2" in text or "mean=0" in text
