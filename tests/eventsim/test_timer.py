"""Unit tests for Timer, PeriodicTimer, DebounceTimer."""

import pytest

from repro.eventsim import DebounceTimer, PeriodicTimer, Timer


class TestTimer:
    def test_fires_once_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_replaces_pending_expiry(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, lambda: timer.start(5.0))
        sim.run()
        assert fired == [6.0]

    def test_stop_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(2.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_stop_without_start_is_safe(self, sim):
        Timer(sim, lambda: None).stop()

    def test_running_property(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.running
        timer.start(1.0)
        assert timer.running
        sim.run()
        assert not timer.running

    def test_expires_at(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(3.0)
        assert timer.expires_at == 3.0

    def test_can_rearm_from_callback(self, sim):
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer = Timer(sim, on_fire)
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestPeriodicTimer:
    def test_fires_every_interval(self, sim):
        fired = []
        timer = PeriodicTimer(sim, lambda: fired.append(sim.now), 2.0)
        timer.start()
        sim.run(until=7.0)
        assert fired == [2.0, 4.0, 6.0]

    def test_stop_halts_ticks(self, sim):
        fired = []
        timer = PeriodicTimer(sim, lambda: fired.append(sim.now), 1.0)
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_jitter_draws_within_bounds(self, sim):
        fired = []
        timer = PeriodicTimer(
            sim, lambda: fired.append(sim.now), 10.0,
            jitter=0.25, jitter_rng=sim.rng("test"),
        )
        timer.start()
        sim.run(until=100.0)
        gaps = [b - a for a, b in zip([0.0] + fired, fired)]
        assert all(7.5 <= g <= 10.0 for g in gaps)

    def test_jitter_requires_rng(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, lambda: None, 1.0, jitter=0.5)

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, lambda: None, 0.0)

    def test_background_by_default(self, sim):
        timer = PeriodicTimer(sim, lambda: None, 1.0)
        timer.start()
        # A background-only queue counts as settled immediately.
        assert sim.run_until_settled() == 0.0


class TestDebounceTimer:
    def test_single_trigger_fires_after_delay(self, sim):
        fired = []
        debounce = DebounceTimer(sim, lambda: fired.append(sim.now), 2.0)
        debounce.trigger()
        sim.run()
        assert fired == [2.0]

    def test_burst_coalesces_to_one_fire(self, sim):
        fired = []
        debounce = DebounceTimer(sim, lambda: fired.append(sim.now), 2.0)
        debounce.trigger()
        sim.schedule(0.5, debounce.trigger)
        sim.schedule(1.0, debounce.trigger)
        sim.run()
        assert fired == [2.0]
        assert debounce.triggers_coalesced == 2

    def test_rate_limit_mode_fires_from_first_trigger(self, sim):
        """extend=False: delay counts from the burst's FIRST trigger."""
        fired = []
        debounce = DebounceTimer(sim, lambda: fired.append(sim.now), 2.0)
        debounce.trigger()
        sim.schedule(1.9, debounce.trigger)
        sim.run()
        assert fired == [2.0]

    def test_extend_mode_fires_from_last_trigger(self, sim):
        fired = []
        debounce = DebounceTimer(
            sim, lambda: fired.append(sim.now), 2.0, extend=True
        )
        debounce.trigger()
        sim.schedule(1.0, debounce.trigger)
        sim.run()
        assert fired == [3.0]

    def test_retrigger_after_fire_starts_new_window(self, sim):
        fired = []
        debounce = DebounceTimer(sim, lambda: fired.append(sim.now), 1.0)
        debounce.trigger()
        sim.schedule(5.0, debounce.trigger)
        sim.run()
        assert fired == [1.0, 6.0]

    def test_cancel_drops_pending(self, sim):
        fired = []
        debounce = DebounceTimer(sim, lambda: fired.append(1), 1.0)
        debounce.trigger()
        debounce.cancel()
        sim.run()
        assert fired == []

    def test_zero_delay_fires_as_event(self, sim):
        """delay=0 still defers to the event loop (not synchronous)."""
        fired = []
        debounce = DebounceTimer(sim, lambda: fired.append(1), 0.0)
        debounce.trigger()
        assert fired == []
        sim.run()
        assert fired == [1]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            DebounceTimer(sim, lambda: None, -1.0)
