"""Unit tests for the structured trace log."""

from repro.eventsim import ROUTE_AFFECTING, TraceLog


class TestRecording:
    def test_records_carry_current_time(self, sim, trace):
        sim.schedule(3.0, lambda: trace.record("x", "node1"))
        sim.run()
        assert trace.records[0].time == 3.0

    def test_record_data_payload(self, trace):
        trace.record("bgp.update.tx", "as1", prefix="10.0.0.0/24")
        assert trace.records[0].data["prefix"] == "10.0.0.0/24"

    def test_counts_by_category(self, trace):
        trace.record("a.b", "n")
        trace.record("a.b", "n")
        trace.record("a.c", "n")
        assert trace.counts == {"a.b": 2, "a.c": 1}

    def test_count_matches_category_prefix(self, trace):
        trace.record("bgp.update.tx", "n")
        trace.record("bgp.update.rx", "n")
        trace.record("bgp.decision", "n")
        assert trace.count("bgp.update") == 2
        assert trace.count("bgp") == 3

    def test_disabled_log_still_counts(self, trace):
        trace.set_enabled(False)
        trace.record("x", "n")
        assert len(trace) == 0
        assert trace.counts["x"] == 1

    def test_clear(self, trace):
        trace.record("x", "n")
        trace.clear()
        assert len(trace) == 0
        assert trace.counts == {}


class TestRingBufferWraparound:
    def test_dropped_records_counts_evictions(self, sim):
        trace = TraceLog(sim, max_records=5)
        for i in range(8):
            trace.record("x", "n", i=i)
        assert len(trace) == 5
        assert trace.dropped_records == 3
        # oldest three fell off the front; the tail survives intact
        assert [r.data["i"] for r in trace.records] == [3, 4, 5, 6, 7]
        # counts are unaffected by eviction
        assert trace.counts["x"] == 8

    def test_unbounded_log_never_drops(self, sim, trace):
        for _ in range(100):
            trace.record("x", "n")
        assert trace.dropped_records == 0

    def test_clear_resets_dropped_counter(self, sim):
        trace = TraceLog(sim, max_records=2)
        for _ in range(4):
            trace.record("x", "n")
        assert trace.dropped_records == 2
        trace.clear()
        assert trace.dropped_records == 0
        assert len(trace) == 0

    def test_repr_reports_dropped(self, sim):
        trace = TraceLog(sim, max_records=1)
        trace.record("x", "n")
        trace.record("x", "n")
        assert "dropped=1" in repr(trace)

    def test_disabled_capture_does_not_drop(self, sim):
        trace = TraceLog(sim, max_records=1)
        trace.set_enabled(False)
        for _ in range(5):
            trace.record("x", "n")
        assert trace.dropped_records == 0


class TestTaps:
    def test_tap_sees_records_live(self, trace):
        seen = []
        trace.add_tap(seen.append)
        trace.record("x", "n")
        assert len(seen) == 1

    def test_tap_fires_even_when_disabled(self, trace):
        seen = []
        trace.add_tap(seen.append)
        trace.set_enabled(False)
        trace.record("x", "n")
        assert len(seen) == 1

    def test_remove_tap(self, trace):
        seen = []
        trace.add_tap(seen.append)
        trace.remove_tap(seen.append)
        trace.record("x", "n")
        assert seen == []


class TestQueries:
    def _populate(self, sim, trace):
        for t, cat, node in [
            (1.0, "bgp.update.tx", "as1"),
            (2.0, "bgp.update.rx", "as2"),
            (3.0, "fib.change", "as1"),
            (4.0, "ping.reply", "h1"),
        ]:
            sim.schedule(t, lambda c=cat, n=node: trace.record(c, n))
        sim.run()

    def test_filter_by_category_prefix(self, sim, trace):
        self._populate(sim, trace)
        assert len(trace.filter(category="bgp.update")) == 2
        assert len(trace.filter(category="bgp")) == 2

    def test_filter_by_node(self, sim, trace):
        self._populate(sim, trace)
        assert len(trace.filter(node="as1")) == 2

    def test_filter_by_time_window(self, sim, trace):
        self._populate(sim, trace)
        assert len(trace.filter(since=2.0, until=3.0)) == 2

    def test_exact_category_does_not_match_prefix_sibling(self, sim, trace):
        trace.record("bgp.update", "n")
        trace.record("bgp.updates", "n")  # not nested under bgp.update
        assert len(trace.filter(category="bgp.update")) == 1

    def test_last_time_over_route_affecting(self, sim, trace):
        self._populate(sim, trace)
        assert trace.last_time(ROUTE_AFFECTING) == 3.0

    def test_last_time_respects_since(self, sim, trace):
        self._populate(sim, trace)
        assert trace.last_time(ROUTE_AFFECTING, since=3.5) is None

    def test_route_affecting_includes_controller_categories(self):
        assert "controller.recompute" in ROUTE_AFFECTING
        assert "controller.flow_install" in ROUTE_AFFECTING
