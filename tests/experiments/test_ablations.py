"""Fast-scale tests for the ablation sweeps."""

import pytest

from repro.experiments.ablations import mrai_sweep, recompute_delay_sweep


@pytest.fixture(scope="module")
def mrai_points():
    return mrai_sweep(n=6, mrai_values=(0.0, 5.0), sdn_count=3, runs=2)


class TestMraiSweep:
    def test_point_per_mrai_value(self, mrai_points):
        assert [p.mrai for p in mrai_points] == [0.0, 5.0]

    def test_pure_bgp_grows_with_mrai(self, mrai_points):
        assert mrai_points[1].pure_bgp.median > mrai_points[0].pure_bgp.median

    def test_reduction_nonnegative_at_high_mrai(self, mrai_points):
        assert mrai_points[1].reduction > 0

    def test_stats_carry_run_counts(self, mrai_points):
        assert mrai_points[0].pure_bgp.n == 2
        assert mrai_points[0].sdn_count == 3


@pytest.fixture(scope="module")
def recompute_points():
    return recompute_delay_sweep(
        n=6, delays=(0.0, 2.0), sdn_count=3, runs=2, mrai=5.0
    )


class TestRecomputeSweep:
    def test_point_per_delay(self, recompute_points):
        assert [p.delay for p in recompute_points] == [0.0, 2.0]

    def test_longer_delay_fewer_recomputations(self, recompute_points):
        assert (
            recompute_points[1].recomputations
            <= recompute_points[0].recomputations
        )

    def test_recomputations_positive(self, recompute_points):
        assert all(p.recomputations > 0 for p in recompute_points)
