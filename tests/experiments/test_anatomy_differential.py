"""Differential oracle: convergence anatomy is invisible to results.

Anatomy is pure post-processing of the span pile, so turning it on may
change *nothing observable* in the science: these tests run the paper's
experiments with attribution fully on and fully off and compare with
exact equality — every measurement field, the full trace digest, and
(deliberately) the spec digest itself.  The shared digest is the design
point: an anatomy-on run and an anatomy-off run of the same trial are
the same cache entry and the same registry lineage, with the
attribution re-derivable losslessly from the stored spans.
"""

import hashlib
from dataclasses import fields

import pytest

from repro.experiments.common import (
    FailoverScenario,
    WithdrawalScenario,
    paper_config,
    sdn_set_for,
)
from repro.framework.convergence import ConvergenceMeasurement, measure_event
from repro.framework.experiment import Experiment
from repro.obs.anatomy import check_anatomy, ensure_record_anatomy
from repro.runner.jobs import RunSpec, execute_spec
from repro.topology.builders import clique


def _trace_digest(exp):
    """Same recipe as ``FaultInjector.trace_digest``: every retained
    trace record, exact float reprs."""
    hasher = hashlib.sha256()
    for record in exp.net.trace:
        hasher.update(
            f"{record.time!r}|{record.category}|{record.node}\n".encode()
        )
    return hasher.hexdigest()


def _run_scenario(scenario, *, n, sdn_count, seed, mrai):
    topology = scenario.topology(n, clique)
    members = sdn_set_for(topology, sdn_count, scenario.reserved_legacy)
    config = paper_config(seed=seed, mrai=mrai, spans=True)
    exp = Experiment(
        topology, sdn_members=members, config=config, name=scenario.name
    ).build()
    scenario.configure(exp)
    exp.start()
    scenario.prepare(exp)
    measurement = measure_event(exp, lambda: scenario.event(exp))
    scenario.finish(exp)
    return exp, measurement


def _normalized_spans(spans):
    """Spans with the process-global ``update_id`` counter removed."""
    out = []
    for span in spans or []:
        data = {k: v for k, v in span["data"].items() if k != "update_id"}
        out.append({**span, "data": data})
    return out


@pytest.mark.parametrize(
    "scenario_cls", [WithdrawalScenario, FailoverScenario],
    ids=["withdrawal", "failover"],
)
def test_measurement_and_trace_identical_anatomy_on_vs_off(scenario_cls):
    off_exp, off_m = _run_scenario(
        scenario_cls(), n=8, sdn_count=3, seed=42, mrai=2.0
    )
    on_exp, on_m = _run_scenario(
        scenario_cls(), n=8, sdn_count=3, seed=42, mrai=2.0
    )
    # derive the anatomy mid-flight, before comparing: the attribution
    # walk may not disturb the experiment it explains
    from repro.analysis.report import anatomy_of_spans

    anatomy = anatomy_of_spans(on_exp.spans_snapshot())
    assert check_anatomy(
        anatomy.to_dict(), t_converged=on_m.t_converged
    ) == []

    for f in fields(ConvergenceMeasurement):
        assert getattr(on_m, f.name) == getattr(off_m, f.name), f.name
    assert _trace_digest(on_exp) == _trace_digest(off_exp)


@pytest.mark.parametrize(
    "scenario_cls", [WithdrawalScenario, FailoverScenario],
    ids=["withdrawal", "failover"],
)
def test_worker_results_identical_anatomy_on_vs_off(scenario_cls):
    # Through the full worker stack: execute_spec with anatomy off and
    # on; everything a cache or registry would persist must match,
    # except the anatomy payload itself.
    def spec(**overrides):
        base = dict(
            scenario_factory=scenario_cls,
            topology_factory=clique,
            n=6,
            sdn_count=2,
            seed=5,
            mrai=1.0,
            spans=True,
        )
        base.update(overrides)
        return RunSpec(**base)

    off = execute_spec(spec())
    assert off.ok, off.error
    on = execute_spec(spec(anatomy=True))
    assert on.ok, on.error

    assert on.measurement_dict() == off.measurement_dict()
    assert _normalized_spans(on.spans) == _normalized_spans(off.spans)
    # anatomy shares the spec digest: it is NOT a new cache identity
    assert spec(anatomy=True).digest() == spec().digest()
    assert on.digest == off.digest

    assert off.anatomy is None
    assert on.anatomy is not None
    assert check_anatomy(
        on.anatomy, t_converged=on.measurement.t_converged
    ) == []

    # an off record re-derives the identical payload losslessly — the
    # cache-hit upgrade path in ParallelRunner.run
    ensure_record_anatomy(off)
    assert off.anatomy == on.anatomy
