"""Unit tests for the scenario/sweep machinery."""

import pytest

from repro.experiments.common import (
    AnnouncementScenario,
    FailoverScenario,
    WithdrawalScenario,
    paper_config,
    paper_timers,
    run_fraction_sweep,
    run_scenario_once,
    sdn_set_for,
)
from repro.topology.builders import clique


class TestPaperDefaults:
    def test_paper_timers_quagga_like(self):
        timers = paper_timers()
        assert timers.mrai == 30.0
        assert timers.withdrawal_rate_limited is True

    def test_paper_config_wiring(self):
        config = paper_config(seed=9, mrai=5.0, recompute_delay=0.1)
        assert config.seed == 9
        assert config.timers.mrai == 5.0
        assert config.controller.recompute_delay == 0.1


class TestSdnSetFor:
    def test_highest_asns_first(self):
        members = sdn_set_for(clique(8), 3, frozenset({1}))
        assert members == frozenset({6, 7, 8})

    def test_reserved_skipped(self):
        members = sdn_set_for(clique(8), 3, frozenset({8, 7}))
        assert members == frozenset({4, 5, 6})

    def test_zero_members(self):
        assert sdn_set_for(clique(8), 0, frozenset()) == frozenset()

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            sdn_set_for(clique(4), 4, frozenset({1}))


class TestScenarios:
    def test_withdrawal_reserves_origin(self):
        assert WithdrawalScenario().reserved_legacy == frozenset({1})

    def test_failover_topology_adds_dual_homed_origin(self):
        scenario = FailoverScenario()
        topo = scenario.topology(6)
        assert len(topo) == 7
        origin = scenario.origin
        assert sorted(topo.neighbors(origin)) == [1, 2]
        assert origin in scenario.reserved_legacy

    def test_announcement_has_no_prepare_state(self):
        scenario = AnnouncementScenario()
        assert scenario.reserved_legacy == frozenset({1})


class TestRunScenarioOnce:
    def test_withdrawal_measures_positive_time(self):
        scenario = WithdrawalScenario()
        topo = scenario.topology(4)
        m = run_scenario_once(
            scenario, topo, frozenset(), paper_config(seed=1, mrai=1.0)
        )
        assert m.convergence_time > 0
        assert m.updates_tx > 0

    def test_deterministic_given_seed(self):
        def run():
            scenario = WithdrawalScenario()
            topo = scenario.topology(4)
            return run_scenario_once(
                scenario, topo, frozenset({4}), paper_config(seed=3, mrai=1.0)
            ).convergence_time

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            scenario = WithdrawalScenario()
            topo = scenario.topology(5)
            return run_scenario_once(
                scenario, topo, frozenset(), paper_config(seed=seed, mrai=5.0)
            ).convergence_time

        assert run(1) != run(2)


class TestSweepHarness:
    def test_sweep_structure(self):
        result = run_fraction_sweep(
            WithdrawalScenario, n=4, sdn_counts=[0, 2], runs=2, mrai=1.0,
        )
        assert result.scenario == "withdrawal"
        assert [p.sdn_count for p in result.points] == [0, 2]
        assert all(len(p.runs) == 2 for p in result.points)
        assert result.fractions() == [0.0, 0.5]

    def test_sweep_stats_available(self):
        result = run_fraction_sweep(
            WithdrawalScenario, n=4, sdn_counts=[0], runs=3, mrai=1.0,
        )
        stats = result.points[0].stats
        assert stats.n == 3
        assert stats.median >= 0

    def test_fit_over_medians(self):
        result = run_fraction_sweep(
            WithdrawalScenario, n=5, sdn_counts=[0, 2, 4], runs=2, mrai=2.0,
        )
        fit = result.fit()
        assert fit.slope < 0  # more SDN -> faster convergence

    def test_reduction_at_full(self):
        result = run_fraction_sweep(
            WithdrawalScenario, n=5, sdn_counts=[0, 4], runs=2, mrai=2.0,
        )
        assert result.reduction_at_full() > 0.5
