"""Unit tests for sweep result export."""

import csv
import io
import json

import pytest

from repro.experiments.common import WithdrawalScenario, run_fraction_sweep
from repro.experiments.export import sweep_rows, sweep_to_csv, sweep_to_json


@pytest.fixture(scope="module")
def sweep():
    return run_fraction_sweep(
        WithdrawalScenario, n=4, sdn_counts=[0, 2], runs=2, mrai=1.0,
    )


class TestRows:
    def test_one_row_per_run(self, sweep):
        assert len(sweep_rows(sweep)) == 4

    def test_row_fields(self, sweep):
        row = sweep_rows(sweep)[0]
        for field in (
            "scenario", "sdn_count", "fraction", "seed",
            "convergence_time", "updates_tx",
        ):
            assert field in row

    def test_rows_match_points(self, sweep):
        rows = sweep_rows(sweep)
        counts = {row["sdn_count"] for row in rows}
        assert counts == {0, 2}


class TestCsv:
    def test_parses_back(self, sweep):
        text = sweep_to_csv(sweep)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 4
        assert parsed[0]["scenario"] == "withdrawal"

    def test_numeric_columns(self, sweep):
        parsed = list(csv.DictReader(io.StringIO(sweep_to_csv(sweep))))
        assert all(float(row["convergence_time"]) >= 0 for row in parsed)


class TestJson:
    def test_valid_json_with_summary(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        assert payload["scenario"] == "withdrawal"
        assert len(payload["points"]) == 2
        assert len(payload["runs"]) == 4
        assert "slope" in payload["fit"]

    def test_point_summaries_consistent(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        for point, src in zip(payload["points"], sweep.points):
            assert point["median"] == pytest.approx(src.stats.median)
            assert len(point["times"]) == 2
