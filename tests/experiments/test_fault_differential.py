"""Differential tests: schedule-based experiments vs pre-refactor oracles.

``fixtures/fault_oracles.json`` was captured from the failover and
flap-storm experiments BEFORE they were rebased onto the fault engine.
Every value is compared with exact equality (``==`` on floats): routing
events expressed as fault schedules must be *bit-identical* to the
direct calls they replaced, not merely close.
"""

import json
import pathlib

import pytest

from repro.experiments.common import (
    FailoverScenario,
    paper_config,
    run_scenario_once,
    sdn_set_for,
)
from repro.experiments.flapstorm import run_flap_storm
from repro.topology.builders import clique

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "fault_oracles.json"
ORACLES = json.loads(FIXTURE.read_text())

FAILOVER_FIELDS = (
    "t_event",
    "convergence_time",
    "state_convergence_time",
    "updates_tx",
    "updates_rx",
    "decision_changes",
    "fib_changes",
    "recomputations",
)
FLAPSTORM_FIELDS = (
    "recomputations",
    "flow_mods",
    "speaker_updates",
    "settle_after_storm",
    "final_state_correct",
)


@pytest.mark.parametrize(
    "case",
    ORACLES["failover"],
    ids=[f"sdn{c['sdn_count']}-seed{c['seed']}" for c in ORACLES["failover"]],
)
def test_failover_bit_identical_to_oracle(case):
    scenario = FailoverScenario()
    topology = scenario.topology(case["n"], clique)
    members = sdn_set_for(
        topology, case["sdn_count"], scenario.reserved_legacy
    )
    measurement = run_scenario_once(
        scenario, topology, members,
        paper_config(
            seed=case["seed"], mrai=case["mrai"],
            recompute_delay=case["recompute_delay"],
        ),
    )
    for field in FAILOVER_FIELDS:
        assert getattr(measurement, field) == case[field], field


@pytest.mark.parametrize(
    "case",
    ORACLES["flapstorm"],
    ids=[
        f"n{c['params']['n']}-sdn{c['params']['sdn_count']}"
        f"-ext{int(c['params'].get('extend_on_burst', False))}"
        for c in ORACLES["flapstorm"]
    ],
)
def test_flapstorm_bit_identical_to_oracle(case):
    result = run_flap_storm(**case["params"])
    for field in FLAPSTORM_FIELDS:
        assert getattr(result, field) == case[field], field
