"""Tests for the flap-storm experiment (delayed-recompute discipline)."""

import pytest

from repro.experiments.flapstorm import flap_storm_sweep, run_flap_storm


@pytest.fixture(scope="module")
def storm_results():
    return {
        (extend, delay): run_flap_storm(
            n=6, sdn_count=3, flaps=8, flap_interval=0.2,
            recompute_delay=delay, extend_on_burst=extend, seed=3,
        )
        for extend in (False, True)
        for delay in (0.1, 1.0)
    }


class TestStormCorrectness:
    def test_final_state_correct_in_all_modes(self, storm_results):
        assert all(r.final_state_correct for r in storm_results.values())

    def test_odd_flap_count_ends_withdrawn(self):
        result = run_flap_storm(
            n=5, sdn_count=2, flaps=3, flap_interval=0.2,
            recompute_delay=0.2, seed=1,
        )
        assert result.final_state_correct  # i.e. nobody can reach it

    def test_settle_time_is_finite(self, storm_results):
        assert all(
            0 <= r.settle_after_storm < 120 for r in storm_results.values()
        )


class TestCoalescing:
    def test_longer_delay_fewer_recomputations(self, storm_results):
        fast = storm_results[(False, 0.1)]
        slow = storm_results[(False, 1.0)]
        assert slow.recomputations <= fast.recomputations

    def test_longer_delay_fewer_flow_mods(self, storm_results):
        fast = storm_results[(False, 0.1)]
        slow = storm_results[(False, 1.0)]
        assert slow.flow_mods <= fast.flow_mods

    def test_extend_mode_coalesces_at_least_as_well(self, storm_results):
        for delay in (0.1, 1.0):
            rate_limit = storm_results[(False, delay)]
            extend = storm_results[(True, delay)]
            assert extend.recomputations <= rate_limit.recomputations

    def test_coalescing_ratio_monotone(self, storm_results):
        fast = storm_results[(False, 0.1)]
        slow = storm_results[(False, 1.0)]
        assert slow.coalescing_ratio >= fast.coalescing_ratio


class TestSweep:
    def test_sweep_covers_both_disciplines(self):
        results = flap_storm_sweep(
            n=5, sdn_count=2, flaps=4, delays=(0.2,), seed=2
        )
        assert {r.extend_on_burst for r in results} == {False, True}
        assert all(r.final_state_correct for r in results)
