"""Tests for the deployment-placement experiment."""

import pytest

from repro.experiments.placement import (
    STRATEGIES,
    pick_members,
    placement_sweep,
)
from repro.topology.builders import barabasi_albert, clique


class TestPickMembers:
    def topo(self):
        return barabasi_albert(12, 2, seed=3)

    def test_hubs_first_picks_highest_degree(self):
        topo = self.topo()
        members = pick_members("hubs-first", topo, 3, frozenset({1}))
        degrees = sorted((topo.degree(a) for a in topo.asns), reverse=True)
        member_degrees = sorted((topo.degree(a) for a in members), reverse=True)
        # the picked set's degrees dominate the global top-3 (minus origin)
        assert member_degrees[0] >= degrees[3]

    def test_stubs_first_picks_lowest_degree(self):
        topo = self.topo()
        members = pick_members("stubs-first", topo, 3, frozenset({1}))
        assert all(topo.degree(a) <= 3 for a in members)

    def test_excluded_never_picked(self):
        topo = self.topo()
        excluded = frozenset({1, 2, 3})
        for strategy in STRATEGIES:
            assert not pick_members(strategy, topo, 4, excluded) & excluded

    def test_exact_budget(self):
        topo = self.topo()
        for strategy in STRATEGIES:
            assert len(pick_members(strategy, topo, 5, frozenset({1}))) == 5

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            pick_members("psychic", self.topo(), 2, frozenset())

    def test_overdraft_rejected(self):
        with pytest.raises(ValueError):
            pick_members("hubs-first", clique(4), 4, frozenset({1}))

    def test_deterministic(self):
        topo = self.topo()
        a = pick_members("spread", topo, 4, frozenset({1}))
        b = pick_members("spread", topo, 4, frozenset({1}))
        assert a == b


class TestPlacementSweep:
    @pytest.fixture(scope="class")
    def results(self):
        return placement_sweep(n=10, sdn_count=3, runs=2, mrai=5.0)

    def test_one_result_per_strategy(self, results):
        assert {r.strategy for r in results} == set(STRATEGIES)

    def test_hubs_beat_stubs(self, results):
        by = {r.strategy: r for r in results}
        assert (
            by["hubs-first"].convergence.median
            <= by["stubs-first"].convergence.median
        )

    def test_degree_statistics_ordered(self, results):
        by = {r.strategy: r for r in results}
        assert (
            by["hubs-first"].mean_member_degree
            >= by["spread"].mean_member_degree
            >= by["stubs-first"].mean_member_degree
        )

    def test_budget_respected(self, results):
        assert all(len(r.members) == 3 for r in results)
