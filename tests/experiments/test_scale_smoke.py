"""Opt-in 10k-AS scale smoke: peak RSS must stay sub-linear.

The scaling chapter's claim — compact RIBs plus lean mode keep route
storage near-linear in topology size — is cheap to *state* and
expensive to *check*, so the check lives behind two gates: the ``slow``
marker and the ``REPRO_SLOW_TESTS`` environment knob.  When enabled it
runs the synthetic CAIDA hierarchy withdrawal storm at 2k and 10k ASes
(each in its own forked child, so ``ru_maxrss`` is an honest per-trial
high-water mark) and feeds both rows through the same
:func:`~repro.experiments.scale.check_rss_sublinear` gate the
``bench_scale`` curve uses.

Run it with::

    REPRO_SLOW_TESTS=1 PYTHONPATH=src python -m pytest -m slow tests
"""

import os

import pytest

from repro.experiments.scale import (
    check_rss_sublinear,
    run_scale_trial,
    scale_spec,
)

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(
        not os.environ.get("REPRO_SLOW_TESTS"),
        reason="10k-AS smoke takes minutes; set REPRO_SLOW_TESTS=1 to run",
    ),
]

SIZES = (2_000, 10_000)


@pytest.fixture(scope="module")
def trial_rows():
    return [run_scale_trial(scale_spec(n)) for n in SIZES]


def test_ten_k_converges(trial_rows):
    big = trial_rows[-1]
    assert big["n"] == SIZES[-1]
    measurement = big["measurement"]
    assert measurement.convergence_time > 0.0
    assert measurement.t_settled >= measurement.t_converged
    assert measurement.updates_tx > 0
    assert big["storm_events"] > 0


def test_peak_rss_sublinear(trial_rows):
    # links grow ~16x across this 5x AS step (lateral peering mesh), so
    # the gate measures size as n + links; exceeding that ratio * 1.6
    # in RSS means compact/lean route storage regressed to super-linear.
    check_rss_sublinear(trial_rows)


def test_intern_pools_bounded_by_paths_not_routers(trial_rows):
    # interning only wins if the attribute pool grows with *distinct
    # paths*, far slower than n * prefixes; a pool rivaling the router
    # count times table size would mean interning is not deduplicating.
    big = trial_rows[-1]
    pools = big["intern_pools"]
    assert 0 < pools["path_attributes"] < big["n"] * 10
    assert 0 < pools["as_paths"] < big["n"] * 10
