"""Differential oracle: the calendar scheduler is bit-identical to the heap.

``scheduler="calendar"`` swaps the kernel's pending set from a binary
heap onto a calendar queue.  The swap is only admissible because both
structures pop events in the exact same ``(time, seq)`` order, so
nothing observable changes: these tests run the paper's experiments
both ways and compare with exact equality — every measurement field,
the full trace digest, the bus's per-category counts, and the registry
row payload.  The failover and flap-storm cases additionally compare
calendar runs against the pre-refactor oracles captured in
``fixtures/fault_oracles.json``, tying the new kernel all the way back
to the original heap implementation.
"""

import hashlib
import json
import pathlib
from dataclasses import fields

import pytest

from repro.experiments.common import (
    FailoverScenario,
    WithdrawalScenario,
    paper_config,
    run_scenario_once,
    sdn_set_for,
)
from repro.experiments.flapstorm import run_flap_storm
from repro.framework.convergence import ConvergenceMeasurement, measure_event
from repro.framework.experiment import Experiment
from repro.obs.registry import RunRegistry
from repro.runner.jobs import RunSpec, execute_spec
from repro.topology.builders import clique

from .test_fault_differential import FAILOVER_FIELDS, FLAPSTORM_FIELDS

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "fault_oracles.json"
ORACLES = json.loads(FIXTURE.read_text())


def _trace_digest(exp):
    """Same recipe as ``FaultInjector.trace_digest``: every retained
    trace record, exact float reprs."""
    hasher = hashlib.sha256()
    for record in exp.net.trace:
        hasher.update(
            f"{record.time!r}|{record.category}|{record.node}\n".encode()
        )
    return hasher.hexdigest()


def _run_withdrawal(*, n, sdn_count, seed, mrai, scheduler):
    """One Fig. 2-style withdrawal run, keeping the live experiment so
    the trace and the bus counters stay inspectable."""
    scenario = WithdrawalScenario()
    topology = scenario.topology(n, clique)
    members = sdn_set_for(topology, sdn_count, scenario.reserved_legacy)
    config = paper_config(seed=seed, mrai=mrai, scheduler=scheduler)
    exp = Experiment(
        topology, sdn_members=members, config=config, name=scenario.name
    ).build()
    scenario.configure(exp)
    exp.start()
    scenario.prepare(exp)
    measurement = measure_event(exp, lambda: scenario.event(exp))
    scenario.finish(exp)
    return exp, measurement


@pytest.mark.parametrize("sdn_count", [0, 3, 6])
def test_withdrawal_measurement_and_trace_bit_identical(sdn_count):
    heap_exp, heap_m = _run_withdrawal(
        n=8, sdn_count=sdn_count, seed=42, mrai=2.0, scheduler="heap"
    )
    cal_exp, cal_m = _run_withdrawal(
        n=8, sdn_count=sdn_count, seed=42, mrai=2.0, scheduler="calendar"
    )
    for f in fields(ConvergenceMeasurement):
        assert getattr(cal_m, f.name) == getattr(heap_m, f.name), f.name
    assert _trace_digest(cal_exp) == _trace_digest(heap_exp)
    # the bus saw the exact same stream, category by category
    assert cal_exp.net.bus.counts == heap_exp.net.bus.counts
    # and the kernels processed the same number of events to get there
    assert (
        cal_exp.net.sim.events_processed == heap_exp.net.sim.events_processed
    )


def _spec(*, scheduler, seed=5):
    return RunSpec(
        scenario_factory=WithdrawalScenario,
        topology_factory=clique,
        n=6,
        sdn_count=2,
        seed=seed,
        mrai=2.0,
        trace_level="off",
        metrics=True,
        scheduler=scheduler,
    )


def test_registry_rows_bit_identical(tmp_path):
    # Through the full worker + registry stack: execute both specs the
    # way a sweep would, record them, and compare the JSON payloads the
    # registry persisted.  Digests differ by design (calendar trials get
    # their own cache entries); the results may not.
    registry = RunRegistry(tmp_path / "reg.sqlite")
    rows = {}
    for scheduler in ("heap", "calendar"):
        spec = _spec(scheduler=scheduler)
        record = execute_spec(spec)
        assert record.ok, record.error
        registry.record(spec, record)
        rows[scheduler] = registry._conn.execute(
            "SELECT measurement, metrics FROM runs WHERE spec_digest=?",
            (spec.digest(),),
        ).fetchone()
    assert rows["calendar"]["measurement"] == rows["heap"]["measurement"]
    assert rows["calendar"]["metrics"] == rows["heap"]["metrics"]
    assert (
        _spec(scheduler="calendar").digest() != _spec(scheduler="heap").digest()
    )


@pytest.mark.parametrize(
    "case",
    ORACLES["failover"],
    ids=[f"sdn{c['sdn_count']}-seed{c['seed']}" for c in ORACLES["failover"]],
)
def test_failover_calendar_matches_prerefactor_oracle(case):
    scenario = FailoverScenario()
    topology = scenario.topology(case["n"], clique)
    members = sdn_set_for(
        topology, case["sdn_count"], scenario.reserved_legacy
    )
    measurement = run_scenario_once(
        scenario, topology, members,
        paper_config(
            seed=case["seed"], mrai=case["mrai"],
            recompute_delay=case["recompute_delay"],
            scheduler="calendar",
        ),
    )
    for field in FAILOVER_FIELDS:
        assert getattr(measurement, field) == case[field], field


@pytest.mark.parametrize(
    "case",
    ORACLES["flapstorm"],
    ids=[
        f"n{c['params']['n']}-sdn{c['params']['sdn_count']}"
        f"-ext{int(c['params'].get('extend_on_burst', False))}"
        for c in ORACLES["flapstorm"]
    ],
)
def test_flapstorm_calendar_matches_prerefactor_oracle(case):
    result = run_flap_storm(**case["params"], scheduler="calendar")
    for field in FLAPSTORM_FIELDS:
        assert getattr(result, field) == case[field], field
