"""Tests for the sub-cluster split experiment (design goal §2)."""

from repro.experiments.subcluster import (
    BRIDGE,
    barbell_topology,
    run_subcluster_experiment,
)


class TestTopology:
    def test_barbell_shape(self):
        topo = barbell_topology()
        assert len(topo) == 8
        assert topo.link_between(*BRIDGE) is not None
        assert topo.link_between(6, 7) is not None  # legacy detour

    def test_bridge_is_the_only_cluster_cut(self):
        from repro.analysis.graphs import cut_links

        topo = barbell_topology()
        assert BRIDGE not in cut_links(topo)  # detour exists -> not a cut


class TestSplitExperiment:
    def test_cluster_splits_into_two(self):
        result = run_subcluster_experiment(seed=1)
        assert len(result.sub_clusters_before) == 1
        assert len(result.sub_clusters_after) == 2

    def test_connectivity_survives_split(self):
        """The paper's design goal: sub-clusters reconnect via legacy."""
        result = run_subcluster_experiment(seed=1)
        assert result.reachable_before
        assert result.reachable_after

    def test_cross_traffic_detours_through_legacy(self):
        result = run_subcluster_experiment(seed=1)
        path = result.cross_path_after
        assert path, "cross-cluster path must exist"
        legacy_hops = [h for h in path if h in ("as5", "as6", "as7", "as8")]
        assert legacy_hops, f"expected legacy detour, got {path}"

    def test_convergence_is_finite_and_fast(self):
        result = run_subcluster_experiment(seed=2)
        assert 0 < result.measurement.convergence_time < 120

    def test_deterministic(self):
        a = run_subcluster_experiment(seed=3)
        b = run_subcluster_experiment(seed=3)
        assert (
            a.measurement.convergence_time == b.measurement.convergence_time
        )
