"""Differential oracle: the telemetry plane is invisible to results.

Structured logging, the sampling profiler, and resource accounting are
only admissible because they change *nothing observable* in the
science: these tests run the paper's experiments with every telemetry
knob on (``REPRO_LOG`` set, a sampler attached, metrics captured) and
fully off, and compare with exact equality — every measurement field
and the full trace digest.  The spec digests of the pre-telemetry
construction are pinned so the ``sample_hz`` field can never leak into
cache keys of existing sweeps.
"""

import hashlib
from dataclasses import fields

import pytest

from repro.experiments.common import (
    FailoverScenario,
    WithdrawalScenario,
    paper_config,
    sdn_set_for,
)
from repro.framework.convergence import ConvergenceMeasurement, measure_event
from repro.framework.experiment import Experiment
from repro.obs.logging import LOG_ENV, get_logger
from repro.obs import logging as obslog
from repro.obs.sampler import StackSampler
from repro.runner.jobs import RunSpec, execute_spec
from repro.topology.builders import clique

# Digests of specs built before the telemetry plane existed.  They are
# content hashes of the spec's describe() payload: if adding
# ``sample_hz`` (or any future telemetry field) changed them, every
# cached trial and registry row in the wild would silently orphan.
LEGACY_WITHDRAWAL_DIGEST = (
    "8ed4a262aeeac6077f051855eecc3e9cc070a8c41e4a46c909a1f301492d10f6"
)
LEGACY_FAILOVER_DIGEST = (
    "03d16fe36e5b802e01885d4d5ffaab6708da19bda04e38d5e30061e9e1af1b28"
)


def _trace_digest(exp):
    """Same recipe as ``FaultInjector.trace_digest``: every retained
    trace record, exact float reprs."""
    hasher = hashlib.sha256()
    for record in exp.net.trace:
        hasher.update(
            f"{record.time!r}|{record.category}|{record.node}\n".encode()
        )
    return hasher.hexdigest()


def _run_scenario(scenario, *, n, sdn_count, seed, mrai, metrics):
    """One full scenario run, keeping the live experiment so the trace
    stays inspectable."""
    topology = scenario.topology(n, clique)
    members = sdn_set_for(topology, sdn_count, scenario.reserved_legacy)
    config = paper_config(seed=seed, mrai=mrai, metrics=metrics)
    exp = Experiment(
        topology, sdn_members=members, config=config, name=scenario.name
    ).build()
    scenario.configure(exp)
    exp.start()
    scenario.prepare(exp)
    measurement = measure_event(exp, lambda: scenario.event(exp))
    scenario.finish(exp)
    return exp, measurement


def _reset_logging():
    obslog._configured = False
    obslog._root = None


@pytest.mark.parametrize(
    "scenario_cls", [WithdrawalScenario, FailoverScenario],
    ids=["withdrawal", "failover"],
)
def test_measurement_and_trace_identical_telemetry_on_vs_off(
    scenario_cls, tmp_path, monkeypatch
):
    # off: no structured log sink, no sampler, no metrics capture
    monkeypatch.delenv(LOG_ENV, raising=False)
    _reset_logging()
    off_exp, off_m = _run_scenario(
        scenario_cls(), n=8, sdn_count=3, seed=42, mrai=2.0, metrics=False
    )

    # on: logging to a file, a live sampler interrupting the run, and
    # the metrics registry recording every event
    monkeypatch.setenv(LOG_ENV, str(tmp_path / "repro.log"))
    _reset_logging()
    logger = get_logger("differential")
    sampler = StackSampler(hz=300.0)
    sampler.start()
    try:
        logger.info("run_started", scenario=scenario_cls.__name__)
        on_exp, on_m = _run_scenario(
            scenario_cls(), n=8, sdn_count=3, seed=42, mrai=2.0, metrics=True
        )
        logger.info("run_finished")
    finally:
        sampler.stop()
        _reset_logging()

    for f in fields(ConvergenceMeasurement):
        assert getattr(on_m, f.name) == getattr(off_m, f.name), f.name
    assert _trace_digest(on_exp) == _trace_digest(off_exp)


def test_legacy_spec_digests_pinned():
    s1 = RunSpec(
        scenario_factory=WithdrawalScenario,
        topology_factory=clique,
        n=8,
        sdn_count=3,
        seed=7,
        mrai=2.0,
    )
    assert s1.digest() == LEGACY_WITHDRAWAL_DIGEST
    s2 = RunSpec(
        scenario_factory=FailoverScenario,
        topology_factory=clique,
        n=8,
        sdn_count=2,
        seed=11,
        mrai=1.0,
        trace_level="route",
        metrics=True,
    )
    assert s2.digest() == LEGACY_FAILOVER_DIGEST


@pytest.mark.parametrize(
    "scenario_cls", [WithdrawalScenario, FailoverScenario],
    ids=["withdrawal", "failover"],
)
def test_worker_results_identical_with_sampler_and_logging(
    scenario_cls, tmp_path, monkeypatch
):
    # Through the full worker stack: execute_spec with telemetry off
    # and fully on, compare the result payloads a cache or registry
    # would persist.  ``sample_hz`` is an execution detail that earns
    # its own digest (sampled trials are not cache-equivalent to
    # unsampled ones), but the measurement may not move.
    def spec(**overrides):
        base = dict(
            scenario_factory=scenario_cls,
            topology_factory=clique,
            n=6,
            sdn_count=2,
            seed=5,
            mrai=1.0,
        )
        base.update(overrides)
        return RunSpec(**base)

    monkeypatch.delenv(LOG_ENV, raising=False)
    _reset_logging()
    off = execute_spec(spec())
    assert off.ok, off.error

    monkeypatch.setenv(LOG_ENV, str(tmp_path / "repro.log"))
    _reset_logging()
    try:
        on = execute_spec(spec(sample_hz=300.0), cid="cafe0123dead")
    finally:
        _reset_logging()
    assert on.ok, on.error

    assert on.measurement_dict() == off.measurement_dict()
    assert spec().digest() == off.digest
    assert spec(sample_hz=300.0).digest() != spec().digest()
