"""Fast-scale tests for the topology-family sweep."""

import pytest

from repro.experiments.topologies import FAMILIES, topology_family_sweep


@pytest.fixture(scope="module")
def family_results():
    small = {
        "clique": FAMILIES["clique"],
        "barabasi-albert": FAMILIES["barabasi-albert"],
    }
    return topology_family_sweep(
        n=8, sdn_fraction=0.5, runs=2, mrai=5.0, families=small,
    )


class TestFamilySweep:
    def test_one_result_per_family(self, family_results):
        assert {r.family for r in family_results} == {
            "clique", "barabasi-albert",
        }

    def test_structure_recorded(self, family_results):
        clique_result = next(r for r in family_results if r.family == "clique")
        assert clique_result.n_ases == 8
        assert clique_result.n_links == 28

    def test_clique_explores_hardest(self, family_results):
        by_family = {r.family: r for r in family_results}
        assert (
            by_family["clique"].pure_bgp.median
            >= by_family["barabasi-albert"].pure_bgp.median
        )

    def test_all_converge(self, family_results):
        for r in family_results:
            assert r.pure_bgp.maximum < 500
            assert r.hybrid.maximum < 500

    def test_caida_family_runs_with_gao_rexford(self):
        caida_only = {"caida-synth": FAMILIES["caida-synth"]}
        results = topology_family_sweep(
            n=8, sdn_fraction=0.3, runs=1, mrai=2.0, families=caida_only,
        )
        assert results[0].family == "caida-synth"
        assert results[0].pure_bgp.median >= 0
