"""Engine tests: determinism, fault semantics, windows, strictness."""

import pytest

from repro.experiments.common import paper_config, sdn_set_for
from repro.faults import (
    FaultError,
    FaultInjector,
    FaultSchedule,
    InvariantChecker,
    InvariantError,
    canned_schedule,
)
from repro.framework.experiment import Experiment
from repro.topology.builders import clique


def build_exp(
    n=6,
    sdn_count=0,
    seed=1,
    mrai=2.0,
    reserved=frozenset({1, 2}),
    origins=(1, 2),
    trace_level="full",
):
    """A converged clique with per-AS prefixes announced."""
    topo = clique(n)
    members = sdn_set_for(topo, sdn_count, reserved)
    exp = Experiment(
        topo, sdn_members=members,
        config=paper_config(seed=seed, mrai=mrai, trace_level=trace_level),
    ).start()
    for asn in origins:
        exp.announce(asn, exp.as_prefix(asn))
    exp.wait_converged()
    return exp


def run_schedule(schedule, **kwargs):
    exp = build_exp(**kwargs)
    result = FaultInjector(exp, schedule).run()
    return exp, result


class TestDeterminism:
    def test_same_inputs_identical_trace(self):
        schedule = canned_schedule("gateway-flap", fault_seed=3)
        _, first = run_schedule(schedule, sdn_count=2)
        _, second = run_schedule(schedule, sdn_count=2)
        assert first.trace_digest == second.trace_digest
        assert first.convergence_times() == second.convergence_times()

    def test_different_fault_seed_changes_jitter(self):
        _, a = run_schedule(canned_schedule("gateway-flap", fault_seed=1))
        _, b = run_schedule(canned_schedule("gateway-flap", fault_seed=2))
        assert a.trace_digest != b.trace_digest

    def test_digest_works_without_trace_capture(self):
        schedule = FaultSchedule().link_down(1, 2, at=1.0)
        _, with_trace = run_schedule(schedule, trace_level="full")
        _, without = run_schedule(schedule, trace_level="off")
        assert len(without.trace_digest) == 64
        # counts-based digest is a different domain than the trace digest
        assert without.trace_digest != with_trace.trace_digest
        _, without_again = run_schedule(schedule, trace_level="off")
        assert without.trace_digest == without_again.trace_digest


class TestLifecycle:
    def test_double_inject_rejected(self):
        exp = build_exp()
        injector = FaultInjector(exp, FaultSchedule().link_down(1, 2, at=0.0))
        injector.inject()
        with pytest.raises(FaultError, match="already injected"):
            injector.inject()

    def test_double_finalize_rejected(self):
        exp = build_exp()
        injector = FaultInjector(exp, FaultSchedule())
        injector.run()
        with pytest.raises(FaultError, match="already finalized"):
            injector.finalize()

    def test_reports_ordered_by_schedule_index(self):
        _, result = run_schedule(
            FaultSchedule()
            .link_down(1, 2, at=1.0)
            .link_up(1, 2, at=4.0)
            .session_reset(1, 2, at=8.0)
        )
        assert [r.index for r in result.reports] == [0, 1, 2]
        assert [r.kind for r in result.reports] == [
            "link_down", "link_up", "session_reset",
        ]
        assert result.ok

    def test_every_report_measured_with_ordering_chain(self):
        _, result = run_schedule(canned_schedule("stress-composite"),
                                 reserved=frozenset({1, 2, 3}),
                                 origins=(1, 2, 3), sdn_count=2)
        assert result.ok
        for report in result.reports:
            m = report.measurement
            assert m is not None
            assert m.t_settled >= m.t_converged
            assert m.t_converged >= m.t_state_converged >= m.t_event
            assert not InvariantChecker.check_measurement(m)


class TestRouterCrash:
    def test_crash_wipes_rib_and_restart_recovers(self):
        exp = build_exp(mrai=1.0)
        node = exp.node(2)
        assert len(node.loc_rib) > 0
        injector = FaultInjector(
            exp, FaultSchedule().router_crash(2, at=1.0, down_for=3.0)
        )
        injector.inject()
        exp.net.sim.run(until=exp.now + 2.0)
        # mid-outage: state wiped, no BGP routes in the FIB
        assert len(node.loc_rib) == 0
        assert not [e for e in node.fib if e.source.startswith("bgp")]
        assert not node.established_sessions()
        result = injector.finalize(t_end=exp.wait_converged())
        assert result.ok
        assert exp.all_reachable()
        # its own prefix is re-announced after restart
        assert node.loc_rib.get(exp.as_prefix(2)) is not None

    def test_sdn_member_crash_recovers(self):
        exp = build_exp(sdn_count=3, mrai=1.0)
        crashed = max(exp.topology.asns)  # highest ASN converts first
        result = FaultInjector(
            exp, FaultSchedule().router_crash(crashed, at=1.0, down_for=2.0)
        ).run()
        assert result.ok
        assert exp.all_reachable()


class TestControllerFaults:
    def test_controller_fault_skipped_without_controller(self):
        _, result = run_schedule(
            FaultSchedule()
            .controller_fail(at=1.0, outage=2.0)
            .controller_partition(at=5.0, duration=1.0),
            sdn_count=0,
        )
        assert [r.skipped for r in result.reports] == [True, True]
        assert result.ok

    def test_blackout_defers_and_reconciles(self):
        _, result = run_schedule(
            canned_schedule("controller-blackout"),
            sdn_count=3, reserved=frozenset({1}), origins=(1,), mrai=1.0,
        )
        assert result.ok
        assert not any(r.skipped for r in result.reports)

    def test_origination_faults_on_cluster_member_origin(self):
        # announce/withdraw faults must route through the controller
        # when the origin AS is itself an SDN member (full deployment)
        exp, result = run_schedule(
            FaultSchedule().withdraw(1, at=1.0).announce(1, at=3.0),
            sdn_count=6, reserved=frozenset(), origins=(1,), mrai=1.0,
        )
        assert result.ok
        assert not any(r.skipped for r in result.reports)
        prefix = exp.as_prefix(1)
        assert exp.node(1).name in exp.controller.originations[prefix]

    def test_partition_heals_clean(self):
        exp, result = run_schedule(
            canned_schedule("speaker-partition"),
            sdn_count=3, reserved=frozenset({1}), origins=(1,), mrai=1.0,
        )
        assert result.ok
        assert exp.speaker.controller_reachable
        assert exp.all_reachable()


class TestLinkFaults:
    def test_degrade_restores_quality(self):
        exp = build_exp()
        link = exp.phys_link(1, 2)
        before = link.latency
        result = FaultInjector(
            exp,
            FaultSchedule().link_degrade(
                1, 2, at=1.0, duration=3.0, latency=before * 10
            ),
        ).run()
        assert result.ok
        assert link.latency == before

    def test_flap_ends_with_link_up(self):
        exp, result = run_schedule(
            FaultSchedule(fault_seed=5).link_flap(
                1, 2, at=1.0, count=3, interval=0.5, jitter=0.2
            )
        )
        assert result.ok
        assert exp.phys_link(1, 2).up

    def test_prefix_flap_parity(self):
        # odd count starting with withdraw ends withdrawn
        exp, result = run_schedule(
            FaultSchedule().prefix_flap(
                1, at=1.0, count=3, interval=0.5, first="withdraw"
            ),
            mrai=1.0,
        )
        assert result.ok
        assert exp.node(1).loc_rib.get(exp.as_prefix(1)) is None
        # even count ends announced
        exp2, result2 = run_schedule(
            FaultSchedule().prefix_flap(
                1, at=1.0, count=2, interval=0.5, first="withdraw"
            ),
            mrai=1.0,
        )
        assert result2.ok
        assert exp2.node(1).loc_rib.get(exp2.as_prefix(1)) is not None


class TestStrictMode:
    def test_strict_raises_on_manufactured_violation(self):
        exp = build_exp()
        injector = FaultInjector(
            exp, FaultSchedule().link_down(1, 2, at=1.0), strict=True
        )
        injector.inject()
        exp.wait_converged()
        # corrupt state behind BGP's back: origin forgets it originated
        # its prefix while the Loc-RIB still holds the local best.
        del exp.node(1).originated[exp.as_prefix(1)]
        with pytest.raises(InvariantError, match="stale_loc_rib"):
            injector.finalize()

    def test_strict_passes_clean_run(self):
        exp = build_exp()
        result = FaultInjector(
            exp, FaultSchedule().link_down(1, 2, at=1.0), strict=True
        ).run()
        assert result.ok

    def test_check_invariants_false_skips_checks(self):
        exp = build_exp()
        injector = FaultInjector(
            exp, FaultSchedule().link_down(1, 2, at=1.0),
            check_invariants=False,
        )
        injector.inject()
        exp.wait_converged()
        del exp.node(1).originated[exp.as_prefix(1)]
        result = injector.finalize()
        assert result.ok  # no checker attached, nothing reported
