"""Invariant checker tests: clean state passes, corrupted state is caught."""

from repro.experiments.common import paper_config, sdn_set_for
from repro.faults import InvariantChecker, InvariantError, InvariantViolation
from repro.framework.convergence import ConvergenceMeasurement
from repro.framework.experiment import Experiment
from repro.topology.builders import clique


def build_exp(sdn_count=0, n=5, seed=1):
    topo = clique(n)
    members = sdn_set_for(topo, sdn_count, frozenset({1}))
    exp = Experiment(
        topo, sdn_members=members,
        config=paper_config(seed=seed, mrai=1.0),
    ).start()
    exp.announce(1, exp.as_prefix(1))
    exp.wait_converged()
    return exp


class TestCleanState:
    def test_converged_pure_bgp_passes(self):
        assert InvariantChecker(build_exp()).check() == []

    def test_converged_hybrid_passes(self):
        assert InvariantChecker(build_exp(sdn_count=2)).check() == []

    def test_controller_sync_skipped_without_controller(self):
        assert InvariantChecker(build_exp()).check_controller_sync() == []


class TestCorruptedState:
    def test_forgotten_origination_is_stale(self):
        exp = build_exp()
        del exp.node(1).originated[exp.as_prefix(1)]
        violations = InvariantChecker(exp).check_loc_rib_consistency()
        assert any(v.check == "stale_loc_rib" for v in violations)

    def test_learned_route_without_backing_adj_rib_in(self):
        exp = build_exp()
        node = exp.node(3)
        route = node.loc_rib.get(exp.as_prefix(1))
        session = node._session_for_peer(route)
        node.adj_rib_in(session).withdraw(route.prefix)
        violations = InvariantChecker(exp).check_loc_rib_consistency()
        assert any(
            v.check == "stale_loc_rib" and v.node == node.name
            for v in violations
        )

    def test_fib_entry_without_loc_rib_best(self):
        exp = build_exp()
        node = exp.node(3)
        node.loc_rib.remove(exp.as_prefix(1))
        violations = InvariantChecker(exp).check_loc_rib_consistency()
        assert any(v.check == "fib_sync" for v in violations)

    def test_loc_rib_best_missing_from_fib(self):
        exp = build_exp()
        node = exp.node(3)
        node.fib.remove(exp.as_prefix(1))
        violations = InvariantChecker(exp).check_loc_rib_consistency()
        assert any(
            v.check == "fib_sync" and "missing from FIB" in v.detail
            for v in violations
        )

    def test_unreachability_is_not_a_loop_violation(self):
        exp = build_exp()
        # sever every link of AS4: destinations become unreachable, but
        # that is legitimate fault fallout, not a forwarding loop.
        for link in list(exp.node(4).links):
            link.fail()
        exp.wait_converged()
        assert InvariantChecker(exp).check_forwarding_loops() == []


class TestMeasurementOrdering:
    def test_clean_chain_passes(self):
        m = ConvergenceMeasurement(
            t_event=1.0, t_converged=3.0, t_settled=4.0,
            t_state_converged=2.0,
        )
        assert InvariantChecker.check_measurement(m) == []

    def test_settle_before_convergence_flagged(self):
        m = ConvergenceMeasurement(
            t_event=1.0, t_converged=3.0, t_settled=2.0,
        )
        violations = InvariantChecker.check_measurement(m, fault="#0 test")
        assert len(violations) == 1
        assert violations[0].check == "measurement_order"
        assert "t_settled" in violations[0].detail

    def test_state_after_activity_flagged(self):
        m = ConvergenceMeasurement(
            t_event=1.0, t_converged=2.0, t_settled=5.0,
            t_state_converged=3.0,
        )
        violations = InvariantChecker.check_measurement(m)
        assert any("t_state_converged" in v.detail for v in violations)


class TestErrorType:
    def test_invariant_error_carries_violations(self):
        violation = InvariantViolation(
            time=1.0, check="fib_sync", node="as3", detail="boom"
        )
        error = InvariantError([violation])
        assert error.violations == [violation]
        assert "fib_sync" in str(error)
        assert isinstance(error, AssertionError)
