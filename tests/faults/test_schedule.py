"""Unit tests for fault schedules: builders, specs, canonical form."""

import json

import pytest

from repro.faults import FAULT_KINDS, FaultEvent, FaultSchedule, FaultSpecError


def sample_schedule(fault_seed=3) -> FaultSchedule:
    return (
        FaultSchedule(fault_seed=fault_seed)
        .link_down(1, 2, at=1.0)
        .link_flap(2, 3, at=2.0, count=2, interval=0.5, jitter=0.1)
        .link_degrade(1, 3, at=3.0, duration=2.0, latency=0.4)
        .session_reset(1, 2, at=4.0)
        .router_crash(3, at=5.0, down_for=2.0)
        .controller_fail(at=6.0, outage=1.0)
        .controller_partition(at=7.0, duration=1.0)
        .withdraw(1, at=8.0)
        .announce(1, at=9.0)
        .prefix_flap(2, at=10.0, count=3, interval=0.25, first="announce")
    )


class TestBuilders:
    def test_every_kind_buildable(self):
        schedule = sample_schedule()
        assert len(schedule) == 10
        assert {e.kind for e in schedule} == set(FAULT_KINDS) - {"link_up"}

    def test_builders_chain(self):
        schedule = FaultSchedule().link_down(1, 2, at=0.0).link_up(1, 2, at=1.0)
        assert [e.kind for e in schedule] == ["link_down", "link_up"]

    def test_params_sorted_and_accessible(self):
        event = FaultSchedule().link_flap(3, 1, at=0.5, jitter=0.2).events[0]
        assert event.params == tuple(sorted(event.params))
        assert event.param("a") == 3
        assert event.param("jitter") == 0.2
        assert event.param("missing", 42) == 42

    def test_describe_is_readable(self):
        event = FaultSchedule().link_down(1, 2, at=1.5).events[0]
        assert "link_down" in event.describe()
        assert "a=1" in event.describe()


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            FaultSchedule().add("meteor_strike", at=0.0)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown parameters"):
            FaultSchedule().add("link_down", at=0.0, a=1, b=2, colour="red")

    def test_missing_required_parameter_rejected(self):
        with pytest.raises(FaultSpecError, match="missing required"):
            FaultSchedule().add("link_down", at=0.0, a=1)

    def test_negative_offset_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultSchedule().link_down(1, 2, at=-1.0)

    def test_bool_is_not_a_number(self):
        with pytest.raises(FaultSpecError):
            FaultSchedule().add("router_crash", at=0.0, asn=2, down_for=True)

    def test_bool_is_not_an_asn(self):
        with pytest.raises(FaultSpecError):
            FaultSchedule().add("link_down", at=0.0, a=True, b=2)

    def test_loss_range_enforced(self):
        with pytest.raises(FaultSpecError, match="loss"):
            FaultSchedule().link_degrade(1, 2, at=0.0, duration=1.0, loss=1.0)

    def test_degrade_needs_latency_or_loss(self):
        with pytest.raises(FaultSpecError, match="latency and/or loss"):
            FaultSchedule().add("link_degrade", at=0.0, a=1, b=2, duration=1.0)

    def test_flap_count_must_be_positive(self):
        with pytest.raises(FaultSpecError, match="count"):
            FaultSchedule().link_flap(1, 2, at=0.0, count=0)

    def test_prefix_must_look_like_a_prefix(self):
        with pytest.raises(FaultSpecError, match="prefix"):
            FaultSchedule().announce(1, at=0.0, prefix="10.0.0.1")

    def test_flap_first_constrained(self):
        with pytest.raises(FaultSpecError, match="first"):
            FaultSchedule().prefix_flap(1, at=0.0, first="explode")


class TestSpecRoundTrip:
    def test_dict_spec_round_trip(self):
        schedule = sample_schedule()
        assert FaultSchedule.from_spec(schedule.to_spec()) == schedule

    def test_json_round_trip(self):
        schedule = sample_schedule()
        assert FaultSchedule.from_spec(schedule.to_json()) == schedule

    def test_fault_seed_preserved(self):
        assert FaultSchedule.from_spec(
            sample_schedule(fault_seed=9).to_spec()
        ).fault_seed == 9

    def test_spec_key_order_irrelevant(self):
        ordered = FaultSchedule.from_spec(
            {"events": [{"kind": "link_down", "at": 1.0, "a": 1, "b": 2}]}
        )
        reversed_keys = FaultSchedule.from_spec(
            {"events": [{"b": 2, "a": 1, "at": 1.0, "kind": "link_down"}]}
        )
        assert ordered == reversed_keys
        assert hash(ordered) == hash(reversed_keys)

    def test_builder_and_spec_agree(self):
        built = FaultSchedule().link_down(1, 2, at=1.0)
        parsed = FaultSchedule.from_spec(
            {"events": [{"kind": "link_down", "at": 1.0, "a": 1, "b": 2}]}
        )
        assert built == parsed

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown spec keys"):
            FaultSchedule.from_spec({"events": [], "extra": 1})

    def test_event_must_be_dict_with_kind(self):
        with pytest.raises(FaultSpecError, match="kind"):
            FaultSchedule.from_spec({"events": [{"at": 1.0}]})

    def test_spec_must_be_dict(self):
        with pytest.raises(FaultSpecError, match="dict"):
            FaultSchedule.from_spec([1, 2, 3])

    def test_spec_events_are_validated(self):
        with pytest.raises(FaultSpecError):
            FaultSchedule.from_spec(
                {"events": [{"kind": "link_down", "at": 0.0, "a": 1}]}
            )


class TestCanonicalForm:
    def test_canonical_round_trip(self):
        schedule = sample_schedule()
        assert FaultSchedule.from_canonical(schedule.canonical()) == schedule

    def test_canonical_survives_json(self):
        schedule = sample_schedule()
        revived = FaultSchedule.from_canonical(
            json.loads(json.dumps(schedule.canonical()))
        )
        assert revived == schedule

    def test_canonical_is_hashable(self):
        assert hash(sample_schedule().canonical()) == hash(
            sample_schedule().canonical()
        )

    def test_bad_canonical_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultSchedule.from_canonical(("wrong-tag", 0, ()))
        with pytest.raises(FaultSpecError):
            FaultSchedule.from_canonical(42)

    def test_schedules_usable_as_dict_keys(self):
        table = {sample_schedule(): "a"}
        assert table[sample_schedule()] == "a"

    def test_different_seed_not_equal(self):
        assert sample_schedule(fault_seed=1) != sample_schedule(fault_seed=2)

    def test_event_is_frozen(self):
        event = FaultEvent(kind="link_down", at=1.0)
        with pytest.raises(AttributeError):
            event.at = 2.0
