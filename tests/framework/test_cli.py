"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_sdn, _parse_topology, main


class TestArgHelpers:
    def test_parse_sdn_list(self):
        assert _parse_sdn("3,5,7") == {3, 5, 7}

    def test_parse_sdn_range(self):
        assert _parse_sdn("5-8") == {5, 6, 7, 8}

    def test_parse_sdn_mixed(self):
        assert _parse_sdn("1,4-6") == {1, 4, 5, 6}

    def test_parse_sdn_empty(self):
        assert _parse_sdn("") == set()
        assert _parse_sdn(None) == set()

    def test_parse_topology(self):
        topo = _parse_topology("ring:6")
        assert topo.name == "ring6" and len(topo) == 6

    def test_parse_topology_unknown(self):
        with pytest.raises(SystemExit):
            _parse_topology("torus:4")


class TestCommands:
    def test_demo_command(self, capsys):
        rc = main(["demo", "--n", "5", "--sdn", "4,5", "--mrai", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "withdrawal converged" in out

    def test_fig2_small(self, capsys):
        rc = main([
            "fig2", "--n", "5", "--runs", "1", "--mrai", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "linear fit" in out

    def test_subcluster_command(self, capsys):
        rc = main(["subcluster", "--seed", "1"])
        assert rc == 0
        assert "sub-clusters after" in capsys.readouterr().out

    def test_dot_command(self, capsys):
        rc = main(["dot", "--topology", "clique:4", "--sdn", "3-4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("graph") and "shape=box" in out

    def test_announcement_small(self, capsys):
        rc = main(["announcement", "--n", "5", "--runs", "1", "--mrai", "1"])
        assert rc == 0
        assert "announcement" in capsys.readouterr().out

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestQuietFlag:
    def test_quiet_silences_info_output(self, capsys):
        rc = main(["--quiet", "demo", "--n", "4", "--mrai", "1"])
        assert rc == 0
        assert capsys.readouterr().out == ""

    def test_quiet_keeps_primary_artifacts(self, capsys):
        rc = main(["--quiet", "dot", "--topology", "clique:4"])
        assert rc == 0
        assert capsys.readouterr().out.startswith("graph")

    def test_quiet_sweep_exit_code_still_reports(self, capsys):
        rc = main([
            "--quiet", "fig2", "--n", "4", "--runs", "1", "--mrai", "1",
        ])
        assert rc == 0
        assert capsys.readouterr().out == ""


class TestInstrumentationFlags:
    def test_demo_metrics_prints_snapshot(self, capsys):
        rc = main(["demo", "--n", "4", "--mrai", "1", "--metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "records_total" in out

    def test_sweep_metrics_summary(self, capsys):
        rc = main([
            "fig2", "--n", "4", "--runs", "1", "--mrai", "1",
            "--metrics", "--trace-level", "off",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "metrics (merged over all runs)" in out
        assert "records_total" in out

    def test_trace_level_off_measures_normally(self, capsys):
        rc = main([
            "demo", "--n", "4", "--mrai", "1", "--trace-level", "off",
        ])
        assert rc == 0
        assert "withdrawal converged" in capsys.readouterr().out

    def test_bad_trace_level_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "--trace-level", "verbose"])


class TestTraceCommands:
    def _run_traced(self, tmp_path, capsys, **extra_flags):
        jsonl = tmp_path / "spans.jsonl"
        argv = [
            "trace", "run", "--scenario", "withdrawal", "--n", "5",
            "--sdn-count", "2", "--seed", "3", "--mrai", "1",
            "--jsonl", str(jsonl),
        ]
        for flag, value in extra_flags.items():
            argv += [f"--{flag}", str(value)]
        rc = main(argv)
        assert rc == 0
        return jsonl, capsys.readouterr().out

    def test_trace_run_prints_causal_report(self, tmp_path, capsys):
        jsonl, out = self._run_traced(tmp_path, capsys)
        assert "root cause #" in out
        assert "bgp.withdraw" in out
        assert "per-AS convergence instants" in out
        assert jsonl.exists() and jsonl.read_text().strip()

    def test_trace_run_writes_chrome_and_markdown(self, tmp_path, capsys):
        import json

        chrome = tmp_path / "trace.json"
        md = tmp_path / "report.md"
        self._run_traced(tmp_path, capsys, chrome=chrome, markdown=md)
        trace = json.loads(chrome.read_text())
        assert {e["ph"] for e in trace["traceEvents"]} <= {"M", "X", "s", "f"}
        assert md.read_text().startswith("# ")

    def test_trace_report_from_jsonl(self, tmp_path, capsys):
        jsonl, _ = self._run_traced(tmp_path, capsys)
        rc = main(["trace", "report", str(jsonl), "--timeline", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "root cause #" in out
        assert "causal timeline" in out

    def test_trace_export_stdout_and_file(self, tmp_path, capsys):
        import json

        jsonl, _ = self._run_traced(tmp_path, capsys)
        rc = main(["trace", "export", str(jsonl)])
        assert rc == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["displayTimeUnit"] == "ms"

        dest = tmp_path / "out.json"
        rc = main(["trace", "export", str(jsonl), "-o", str(dest), "--pretty"])
        assert rc == 0
        assert json.loads(dest.read_text())["traceEvents"]

    def test_trace_run_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "run", "--scenario", "meteor"])
