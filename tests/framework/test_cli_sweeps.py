"""CLI sweep commands at toy scale (separate file: these are slower)."""

import json

import pytest

from repro.cli import main


class TestSweepCommands:
    def test_failover_command(self, capsys):
        rc = main([
            "failover", "--n", "5", "--runs", "1", "--mrai", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fail-over" in out

    def test_topologies_command(self, capsys):
        rc = main(["topologies", "--n", "6", "--runs", "1", "--mrai", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "clique" in out and "reduction" in out

    def test_flapstorm_command(self, capsys):
        rc = main([
            "flapstorm", "--n", "5", "--flaps", "4", "--delays", "0.2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recomputes=" in out

    def test_csv_json_export(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        rc = main([
            "fig2", "--n", "5", "--runs", "1", "--mrai", "1",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert rc == 0
        assert csv_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload["scenario"] == "withdrawal"
        assert payload["runs"]
