"""Tests for ExperimentConfig variants and validation."""

import pytest

from repro.bgp.session import BGPTimers
from repro.framework.experiment import (
    Experiment,
    ExperimentConfig,
    ExperimentError,
)
from repro.topology.builders import clique, line


class TestLatencyOverride:
    def test_phys_latency_overrides_topology(self):
        config = ExperimentConfig(
            seed=1, timers=BGPTimers(mrai=0.5), phys_latency=0.2,
        )
        exp = Experiment(line(3), config=config).start()
        rtt = exp.ping(1, 3)
        # 2 hops * 0.2s each way = 0.8s
        assert rtt == pytest.approx(0.8, abs=0.05)

    def test_topology_latency_used_by_default(self):
        topo = line(3)
        # builders default to 10ms per link
        config = ExperimentConfig(seed=1, timers=BGPTimers(mrai=0.5))
        exp = Experiment(topo, config=config).start()
        rtt = exp.ping(1, 3)
        assert rtt == pytest.approx(0.04, abs=0.01)


class TestPolicyModeValidation:
    def test_unknown_policy_mode_rejected_at_build(self):
        config = ExperimentConfig(seed=1, policy_mode="anarchy")
        with pytest.raises(ExperimentError, match="policy mode"):
            Experiment(clique(3), config=config).build()


class TestDerivedTimers:
    def test_collector_timers_strip_mrai_only(self):
        config = ExperimentConfig(
            timers=BGPTimers(mrai=30.0, withdrawal_rate_limited=True)
        )
        collector = config.collector_timers()
        assert collector.mrai == 0.0
        assert collector.withdrawal_rate_limited is True

    def test_speaker_timers_strip_mrai(self):
        config = ExperimentConfig(timers=BGPTimers(mrai=30.0))
        assert config.speaker_timers().mrai == 0.0

    def test_session_timers_are_copies(self):
        config = ExperimentConfig(timers=BGPTimers(mrai=30.0))
        timers = config.session_timers()
        timers.mrai = 1.0
        assert config.timers.mrai == 30.0


class TestHorizon:
    def test_wait_converged_horizon_enforced(self):
        from repro.eventsim import SimulationError

        config = ExperimentConfig(
            seed=1, timers=BGPTimers(mrai=30.0), horizon=0.001,
        )
        exp = Experiment(clique(4), config=config)
        exp.build()
        exp.node(1).start()
        with pytest.raises(SimulationError):
            exp.wait_converged()

    def test_explicit_horizon_overrides_config(self):
        config = ExperimentConfig(seed=1, timers=BGPTimers(mrai=1.0))
        exp = Experiment(clique(3), config=config).start()
        exp.announce(1)
        assert exp.wait_converged(horizon=1e6) > 0


class TestEventPrefixPool:
    def test_event_prefixes_disjoint_from_as_prefixes(self):
        config = ExperimentConfig(seed=1, timers=BGPTimers(mrai=0.5))
        exp = Experiment(clique(3), config=config).start()
        event_prefix = exp.new_event_prefix()
        for asn in exp.topology.asns:
            assert not event_prefix.overlaps(exp.as_prefix(asn))

    def test_pool_exhaustion_raises(self):
        config = ExperimentConfig(seed=1, timers=BGPTimers(mrai=0.5))
        exp = Experiment(clique(3), config=config).build()
        exp._event_prefix_index = 10**6
        with pytest.raises(ExperimentError):
            exp.new_event_prefix()
