"""Unit tests for convergence measurement."""

import pytest

from repro.bgp.session import BGPTimers
from repro.framework.convergence import measure_event
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.builders import clique


def experiment(seed=1, mrai=1.0, **kwargs):
    return Experiment(
        clique(4, **kwargs),
        config=ExperimentConfig(seed=seed, timers=BGPTimers(mrai=mrai)),
    ).start()


class TestMeasureEvent:
    def test_no_op_event_measures_zero(self):
        exp = experiment()
        m = measure_event(exp, lambda: None)
        assert m.convergence_time == 0.0
        assert m.updates_tx == 0

    def test_announcement_measured(self):
        exp = experiment()
        m = measure_event(exp, lambda: exp.announce(1))
        assert m.convergence_time > 0
        assert m.updates_tx > 0
        assert m.decision_changes > 0

    def test_withdrawal_longer_than_announcement(self):
        exp = experiment(mrai=5.0)
        prefix = exp.announce(1)
        announce_settle = exp.wait_converged()
        m = measure_event(exp, lambda: exp.withdraw(1, prefix))
        # withdrawal explores stale paths; announcement flooding doesn't
        assert m.convergence_time > 0

    def test_counters_are_deltas_not_totals(self):
        exp = experiment()
        first = measure_event(exp, lambda: exp.announce(1))
        second = measure_event(exp, lambda: exp.announce(2))
        # similar-magnitude events: second must not include first's counts
        assert second.updates_tx < 2 * first.updates_tx + 10

    def test_settle_time_not_before_convergence(self):
        exp = experiment()
        m = measure_event(exp, lambda: exp.announce(1))
        assert m.t_settled >= m.t_converged >= m.t_event

    def test_state_convergence_not_after_activity_convergence(self):
        exp = experiment(mrai=5.0)
        prefix = exp.announce(1)
        exp.wait_converged()
        m = measure_event(exp, lambda: exp.withdraw(1, prefix))
        assert m.t_state_converged <= m.t_converged
        assert m.state_convergence_time >= 0

    def test_reachability_check_option(self):
        exp = experiment()
        m = measure_event(
            exp, lambda: exp.announce(1), check_reachability=True
        )
        assert m.all_reachable is True

    def test_horizon_violation_propagates(self):
        from repro.eventsim import SimulationError

        exp = experiment(mrai=30.0)
        with pytest.raises(SimulationError):
            measure_event(exp, lambda: exp.announce(1), horizon=0.001)
