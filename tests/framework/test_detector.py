"""Tests for silence-window convergence detection vs the oracle."""

import pytest

from repro.bgp.session import BGPTimers
from repro.framework.detector import SilenceDetector, compare_with_oracle
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.builders import clique


def experiment(mrai=5.0, seed=1, n=6):
    return Experiment(
        clique(n),
        config=ExperimentConfig(seed=seed, timers=BGPTimers(mrai=mrai)),
    ).start()


class TestAgainstOracle:
    def test_wide_window_matches_oracle(self):
        """With a window > max MRAI gap, the heuristic finds the same
        convergence instant, just declared one window later."""
        exp = experiment()
        prefix = exp.announce(1)
        exp.wait_converged()
        detection = compare_with_oracle(
            exp, lambda: exp.withdraw(1, prefix), silence_window=60.0,
        )
        assert not detection.premature
        assert detection.t_last_activity == pytest.approx(detection.t_oracle)
        assert detection.declaration_lag == pytest.approx(60.0)

    def test_short_window_fires_prematurely(self):
        """A window shorter than one MRAI gap declares too early —
        the pitfall the exact oracle avoids."""
        exp = experiment(mrai=10.0)
        prefix = exp.announce(1)
        exp.wait_converged()
        detection = compare_with_oracle(
            exp, lambda: exp.withdraw(1, prefix), silence_window=2.0,
        )
        # withdrawal exploration has multi-second MRAI gaps at mrai=10
        assert detection.premature
        assert detection.t_declared < detection.t_oracle

    def test_window_shorter_than_mrai_gap_fires_early(self):
        """Paper-default MRAI (30s) with a 5s silence window: withdrawal
        exploration pauses longer than the window between MRAI rounds,
        so the heuristic declares convergence inside a gap — before the
        oracle's true instant — and the declared time is exactly the
        last-seen activity plus the window."""
        exp = experiment(mrai=30.0, n=6)
        prefix = exp.announce(1)
        exp.wait_converged()
        detection = compare_with_oracle(
            exp, lambda: exp.withdraw(1, prefix), silence_window=5.0,
        )
        assert detection.premature
        assert detection.t_last_activity < detection.t_oracle
        assert detection.t_declared == pytest.approx(
            detection.t_last_activity + detection.silence_window
        )
        assert detection.t_declared < detection.t_oracle

    def test_no_event_declares_after_window(self):
        exp = experiment()
        detection = compare_with_oracle(
            exp, lambda: None, silence_window=30.0,
        )
        assert not detection.premature
        assert detection.declaration_lag == pytest.approx(30.0)


class TestDetectorMechanics:
    def test_invalid_window(self):
        exp = experiment()
        with pytest.raises(ValueError):
            SilenceDetector(exp, silence_window=0)

    def test_detach_stops_observation(self):
        exp = experiment()
        detector = SilenceDetector(exp, silence_window=5.0)
        detector.arm()
        detector.detach()
        exp.announce(1)
        exp.wait_converged()
        result = detector.result(exp.now)
        # saw nothing after detach: last activity is the arm instant
        assert result.t_last_activity <= result.t_oracle
