"""Tests for runtime topology changes (paper §2)."""

import pytest

from repro.bgp.policy import Relationship
from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import (
    Experiment,
    ExperimentConfig,
    ExperimentError,
)
from repro.topology.builders import clique, line


def build(topo=None, sdn=(), seed=1, mrai=1.0):
    config = ExperimentConfig(
        seed=seed,
        timers=BGPTimers(mrai=mrai),
        controller=ControllerConfig(recompute_delay=0.2),
    )
    return Experiment(
        topo if topo is not None else clique(4),
        sdn_members=set(sdn), config=config,
    ).start()


class TestConnect:
    def test_new_legacy_link_carries_traffic(self):
        exp = build(topo=line(4))
        # shortcut 1 <-> 4: path should shorten from 4 hops to direct
        assert len(exp.reachable(1, 4).hops) == 4
        exp.connect(1, 4)
        exp.wait_converged()
        assert exp.reachable(1, 4).hops == ["as1", "as4"]

    def test_duplicate_connect_rejected(self):
        exp = build()
        from repro.topology.model import TopologyError

        with pytest.raises(TopologyError):
            exp.connect(1, 2)

    def test_new_member_legacy_peering(self):
        exp = build(topo=line(4), sdn=(3, 4))
        exp.connect(1, 4)  # legacy as1 to member as4
        exp.wait_converged()
        assert exp.reachable(1, 4).hops == ["as1", "as4"]
        # a new speaker peering exists and is established
        peerings = [
            p for p in exp.speaker.peerings()
            if p.member == "as4" and p.external == "as1"
        ]
        assert peerings
        session = exp.speaker.session_for(peerings[0])
        assert session is not None and session.established

    def test_new_intra_cluster_link_used_by_controller(self):
        # members 2 and 4 not adjacent on a line; connect them.
        exp = build(topo=line(5), sdn=(2, 4), seed=2)
        exp.connect(2, 4)
        exp.wait_converged()
        assert exp.controller.switch_graph.intra_link_name("as2", "as4")
        assert len(exp.controller.switch_graph.sub_clusters()) == 1
        assert exp.all_reachable()

    def test_gao_rexford_relationship_respected(self):
        exp = build(topo=line(3))
        exp.connect(1, 3, relationship=Relationship.CUSTOMER)
        link = exp.topology.link_between(1, 3)
        assert link.relationship_for(1) is Relationship.CUSTOMER


class TestAddAs:
    def test_add_legacy_as_becomes_reachable(self):
        exp = build()
        exp.add_as(9, links=[1, 2])
        exp.wait_converged()
        assert exp.reachable(9, 3).reached
        assert exp.reachable(3, 9).reached

    def test_new_as_originates_its_prefix(self):
        exp = build()
        exp.add_as(9, links=[1])
        exp.wait_converged()
        assert exp.node(2).loc_rib.get(exp.as_prefix(9)) is not None

    def test_new_as_peers_with_collector(self):
        exp = build()
        exp.add_as(9, links=[1])
        exp.wait_converged()
        assert any(u.peer_name == "as9" for u in exp.collector.feed)

    def test_add_sdn_member_at_runtime(self):
        exp = build(sdn=(4,))
        exp.add_as(9, sdn=True, links=[1, 4])
        exp.wait_converged()
        assert "as9" in exp.controller.members()
        assert exp.reachable(2, 9).reached
        assert exp.reachable(9, 2).reached

    def test_first_sdn_member_at_runtime_rejected(self):
        exp = build()
        with pytest.raises(ExperimentError):
            exp.add_as(9, sdn=True, links=[1])

    def test_duplicate_asn_rejected(self):
        exp = build()
        from repro.topology.model import TopologyError

        with pytest.raises(TopologyError):
            exp.add_as(1)

    def test_growth_measured_as_event(self):
        from repro.framework.convergence import measure_event

        exp = build()
        m = measure_event(exp, lambda: exp.add_as(9, links=[1, 2, 3]))
        assert m.convergence_time > 0
        assert m.updates_tx > 0
        assert exp.all_reachable()
