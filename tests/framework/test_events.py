"""Unit tests for scripted event timelines."""

import pytest

from repro.bgp.session import BGPTimers
from repro.framework.events import EventSchedule
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.builders import clique, line


def experiment(topo=None, mrai=1.0, seed=1):
    return Experiment(
        topo if topo is not None else clique(4),
        config=ExperimentConfig(seed=seed, timers=BGPTimers(mrai=mrai)),
    ).start()


class TestScheduleExecution:
    def test_events_fire_at_offsets(self):
        exp = experiment()
        base = exp.now
        schedule = EventSchedule().announce(1, at=5.0).announce(2, at=12.0)
        reports = schedule.run(exp)
        assert len(reports) == 2
        assert reports[0].t_fired == pytest.approx(base + 5.0)
        assert reports[1].t_fired >= base + 12.0

    def test_announce_then_labelled_withdraw(self):
        exp = experiment()
        schedule = (
            EventSchedule()
            .announce(1, at=0.0, label="ann")
            .withdraw_label(1, "ann", at=10.0)
        )
        reports = schedule.run(exp)
        prefix = schedule.prefixes["ann"]
        assert exp.node(2).loc_rib.get(prefix) is None
        assert reports[1].updates_tx > 0

    def test_withdraw_unknown_label_raises(self):
        exp = experiment()
        schedule = EventSchedule().withdraw_label(1, "ghost", at=0.0)
        from repro.framework.experiment import ExperimentError

        with pytest.raises(ExperimentError):
            schedule.run(exp)

    def test_fail_and_restore_timeline(self):
        exp = experiment(topo=line(3))
        schedule = (
            EventSchedule()
            .fail_link(2, 3, at=0.0)
            .restore_link(2, 3, at=30.0)
        )
        schedule.run(exp)
        assert exp.reachable(1, 3).reached

    def test_reports_capture_convergence(self):
        exp = experiment()
        schedule = EventSchedule().announce(1, at=0.0)
        (report,) = schedule.run(exp)
        assert report.convergence_time >= 0
        assert report.updates_tx > 0

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            EventSchedule().announce(1, at=-1.0)

    def test_empty_schedule_noop(self):
        exp = experiment()
        assert EventSchedule().run(exp) == []

    def test_events_run_in_time_order_regardless_of_declaration(self):
        exp = experiment()
        schedule = (
            EventSchedule()
            .announce(2, at=10.0, label="later")
            .announce(1, at=1.0, label="earlier")
        )
        reports = schedule.run(exp)
        assert [r.label for r in reports] == ["earlier", "later"]

    def test_fail_node_step(self):
        exp = experiment()
        schedule = EventSchedule().fail_node(3, at=0.0)
        schedule.run(exp)
        assert not exp.reachable(1, 3).reached
