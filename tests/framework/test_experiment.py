"""Unit tests for the Experiment orchestration API."""

import pytest

from repro.bgp.router import BGPRouter
from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import (
    Experiment,
    ExperimentConfig,
    ExperimentError,
)
from repro.sdn.switch import SDNSwitch
from repro.topology.builders import clique, line


def config(seed=1, mrai=1.0, **kwargs):
    return ExperimentConfig(
        seed=seed,
        timers=BGPTimers(mrai=mrai),
        controller=ControllerConfig(recompute_delay=0.2),
        **kwargs,
    )


class TestBuild:
    def test_pure_bgp_build(self):
        exp = Experiment(clique(4), config=config()).build()
        assert exp.controller is None and exp.speaker is None
        assert all(isinstance(n, BGPRouter) for n in exp.as_nodes())

    def test_hybrid_build_devices(self):
        exp = Experiment(clique(4), sdn_members={3, 4}, config=config()).build()
        assert isinstance(exp.node(3), SDNSwitch)
        assert isinstance(exp.node(1), BGPRouter)
        assert exp.controller is not None and exp.speaker is not None

    def test_unknown_sdn_member_rejected(self):
        with pytest.raises(ExperimentError):
            Experiment(clique(4), sdn_members={9}, config=config())

    def test_double_build_rejected(self):
        exp = Experiment(clique(3), config=config()).build()
        with pytest.raises(ExperimentError):
            exp.build()

    def test_collector_peers_with_legacy_only(self):
        exp = Experiment(clique(4), sdn_members={4}, config=config()).build()
        collector_links = [l for l in exp.net.links if l.kind == "collector"]
        names = {l.other(exp.collector).name for l in collector_links}
        assert names == {"as1", "as2", "as3"}

    def test_no_collector_option(self):
        cfg = config(with_collector=False)
        exp = Experiment(clique(3), config=cfg).build()
        assert exp.collector is None

    def test_link_addressing_assigned(self):
        exp = Experiment(clique(3), config=config()).build()
        for link in exp.net.links:
            if link.kind == "phys":
                assert link.prefix is not None
                assert len(link.addresses) == 2

    def test_intra_cluster_links_registered(self):
        exp = Experiment(clique(4), sdn_members={3, 4}, config=config()).build()
        assert exp.controller.switch_graph.intra_link_name("as3", "as4")

    def test_commands_require_build(self):
        exp = Experiment(clique(3), config=config())
        with pytest.raises(ExperimentError):
            exp.announce(1)


class TestLifecycle:
    def test_start_converges_and_reaches(self):
        exp = Experiment(clique(4), config=config()).start()
        assert exp.all_reachable()

    def test_double_start_rejected(self):
        exp = Experiment(clique(3), config=config()).start()
        with pytest.raises(ExperimentError):
            exp.start()

    def test_originate_all_gives_every_as_a_prefix(self):
        exp = Experiment(clique(3), config=config()).start()
        for asn in (1, 2, 3):
            node = exp.node(asn)
            assert exp.as_prefix(asn) in node.local_prefixes

    def test_originate_all_off(self):
        cfg = config(originate_all=False)
        exp = Experiment(clique(3), config=cfg).start()
        assert len(exp.node(1).loc_rib) == 0


class TestCommands:
    def test_announce_returns_fresh_event_prefix(self):
        exp = Experiment(clique(3), config=config()).start()
        p1 = exp.announce(1)
        p2 = exp.announce(2)
        assert p1 != p2
        assert str(p1).startswith("192.168.")

    def test_withdraw_roundtrip(self):
        exp = Experiment(clique(3), config=config()).start()
        prefix = exp.announce(1)
        exp.wait_converged()
        assert exp.node(2).loc_rib.get(prefix) is not None
        exp.withdraw(1, prefix)
        exp.wait_converged()
        assert exp.node(2).loc_rib.get(prefix) is None

    def test_fail_and_restore_link(self):
        exp = Experiment(line(3), config=config()).start()
        exp.fail_link(1, 2)
        exp.wait_converged()
        assert not exp.reachable(1, 3).reached
        exp.restore_link(1, 2)
        exp.wait_converged()
        assert exp.reachable(1, 3).reached

    def test_fail_unknown_link_raises(self):
        exp = Experiment(line(3), config=config()).start()
        with pytest.raises(ExperimentError):
            exp.fail_link(1, 3)

    def test_fail_node_kills_all_its_links(self):
        exp = Experiment(clique(4), config=config()).start()
        exp.fail_node(1)
        exp.wait_converged()
        assert not exp.reachable(2, 1).reached
        assert exp.reachable(2, 3).reached

    def test_ping_measures_rtt(self):
        exp = Experiment(line(3), config=config()).start()
        rtt = exp.ping(1, 3)
        assert rtt is not None
        assert rtt == pytest.approx(0.04, abs=0.01)

    def test_ping_fails_when_partitioned(self):
        exp = Experiment(line(3), config=config()).start()
        exp.fail_link(2, 3)
        exp.wait_converged()
        assert exp.ping(1, 3) is None


class TestHosts:
    def test_host_addressing_inside_as_prefix(self):
        exp = Experiment(clique(3), config=config()).start()
        host = exp.add_host(2)
        assert host.address in exp.as_prefix(2)

    def test_host_reachable_from_other_as(self):
        exp = Experiment(clique(3), config=config()).start()
        host = exp.add_host(2)
        walk = exp.net.trace_path(exp.node(1), host.address)
        assert walk.reached and walk.hops[-1] == host.name

    def test_host_on_sdn_member(self):
        exp = Experiment(
            clique(4), sdn_members={3, 4}, config=config()
        ).start()
        host = exp.add_host(4)
        exp.wait_converged()
        walk = exp.net.trace_path(exp.node(1), host.address)
        assert walk.reached and walk.hops[-1] == host.name

    def test_multiple_hosts_per_as(self):
        exp = Experiment(clique(3), config=config()).start()
        h1 = exp.add_host(1)
        h2 = exp.add_host(1)
        assert h1.address != h2.address


class TestPrepend:
    def test_set_export_prepend_lengthens_path(self):
        exp = Experiment(line(3), config=config()).build()
        exp.set_export_prepend(1, toward=2, count=3)
        exp.start()
        route = exp.node(3).loc_rib.get(exp.as_prefix(1))
        assert list(route.attrs.as_path) == [2, 1, 1, 1, 1]

    def test_prepend_on_sdn_member_rejected(self):
        exp = Experiment(clique(3), sdn_members={2}, config=config()).build()
        with pytest.raises(ExperimentError):
            exp.set_export_prepend(2, toward=1, count=3)
