"""MeasurementWindow and the overlapping-window/custom-set edge case.

Regression coverage for the ``t_state_converged`` ordering bug: with
custom tracker category sets that are not nested (state-changing events
the activity set does not track), or with a window opened mid-flight of
an earlier event, the raw tracker maxima could place the last state
change *after* the last tracked activity — yielding
``t_converged < t_state_converged``.  ``_finalize_instants`` now clamps
``t_converged`` up; with the stock nested sets the clamp is a no-op.
"""

import pytest

from repro.bgp.session import BGPTimers
from repro.framework.convergence import (
    STATE_CHANGING,
    ConvergenceTracker,
    MeasurementWindow,
    _finalize_instants,
    measure_event,
)
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.builders import clique


def experiment(seed=1, mrai=1.0, n=4):
    return Experiment(
        clique(n),
        config=ExperimentConfig(seed=seed, timers=BGPTimers(mrai=mrai)),
    ).start()


class TestFinalizeInstants:
    def test_nothing_happened_resolves_to_event(self):
        assert _finalize_instants(3.0, None, None) == (3.0, 3.0)

    def test_activity_without_state_change(self):
        assert _finalize_instants(0.0, 2.0, None) == (2.0, 0.0)

    def test_nested_sets_case_untouched(self):
        # stock sets: state change always <= activity; no clamping
        assert _finalize_instants(0.0, 5.0, 4.0) == (5.0, 4.0)

    def test_state_after_activity_clamps_convergence_up(self):
        # the regression: last state change beyond the last tracked
        # activity must drag t_converged with it, never invert the chain
        t_converged, t_state = _finalize_instants(0.0, 2.0, 6.0)
        assert (t_converged, t_state) == (6.0, 6.0)
        assert t_converged >= t_state

    def test_state_only_no_tracked_activity(self):
        assert _finalize_instants(1.0, None, 4.0) == (4.0, 4.0)


class TestNonNestedTrackerSets:
    def test_untracked_activity_keeps_ordering_chain(self):
        """A tracker whose activity set misses the state-changing
        categories entirely still yields a well-ordered measurement."""
        exp = experiment()
        exp.tracker.detach()
        # activity = controller recomputes only; a pure-BGP run has none,
        # so every fib.change lands after the "last activity" (None).
        exp.tracker = ConvergenceTracker(
            exp.net.bus,
            route_affecting=frozenset({"controller.recompute"}),
            state_changing=STATE_CHANGING,
        )
        m = measure_event(exp, lambda: exp.announce(1))
        assert m.fib_changes > 0
        assert m.t_converged >= m.t_state_converged > m.t_event
        # the clamp raised t_converged to the final state change
        assert m.t_converged == m.t_state_converged


class TestMeasurementWindow:
    def test_requires_tracker(self):
        exp = experiment()
        exp.tracker.detach()
        exp.tracker = None
        with pytest.raises(ValueError, match="ConvergenceTracker"):
            MeasurementWindow(exp)

    def test_double_close_rejected(self):
        exp = experiment()
        window = MeasurementWindow(exp, label="w")
        window.close()
        with pytest.raises(ValueError, match="already closed"):
            window.close()

    def test_idle_window_measures_zero(self):
        exp = experiment()
        m = MeasurementWindow(exp).close()
        assert m.convergence_time == 0.0
        assert m.updates_tx == 0

    def test_window_measures_an_announcement(self):
        exp = experiment()
        window = MeasurementWindow(exp)
        exp.announce(1)
        t_end = exp.wait_converged()
        m = window.close(t_end)
        assert m.updates_tx > 0
        assert m.t_settled >= m.t_converged >= m.t_state_converged
        assert m.t_state_converged > m.t_event

    def test_overlapping_windows_both_well_ordered(self):
        """The second window opens while the first event is still
        converging; both measurements must satisfy the ordering chain."""
        exp = experiment(mrai=5.0)
        prefix = exp.announce(1)
        exp.wait_converged()

        first = MeasurementWindow(exp, label="withdraw")
        exp.withdraw(1, prefix)
        exp.net.sim.run(until=exp.now + 0.5)  # mid-convergence

        second = MeasurementWindow(exp, label="announce")
        exp.announce(2)
        t_end = exp.wait_converged()

        m1 = first.close(t_end)
        m2 = second.close(t_end)
        for m in (m1, m2):
            assert m.t_settled >= m.t_converged
            assert m.t_converged >= m.t_state_converged >= m.t_event
        assert m2.t_event > m1.t_event
        # counters are per-window deltas: the earlier window saw at
        # least everything the later one did
        assert m1.updates_tx >= m2.updates_tx

    def test_counts_are_window_deltas(self):
        exp = experiment()
        first = MeasurementWindow(exp)
        exp.announce(1)
        exp.wait_converged()
        m1 = first.close()

        second = MeasurementWindow(exp)
        exp.announce(2)
        exp.wait_converged()
        m2 = second.close()
        # second window must not re-count the first announcement
        assert m2.updates_tx < m1.updates_tx + 10
