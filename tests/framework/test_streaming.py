"""Acceptance tests for the streaming instrumentation refactor.

Two guarantees the refactor must keep:

1. the streaming :class:`ConvergenceTracker` produces bit-identical
   measurements to the retained-trace scan (the oracle), and
2. a metrics-only run (``trace_level="off"``) completes the paper's
   16-AS clique withdrawal experiment with the same convergence times
   while retaining zero trace records.
"""

import dataclasses

import pytest

from repro.experiments.common import (
    WithdrawalScenario,
    paper_config,
    run_scenario_once,
    sdn_set_for,
)
from repro.framework.convergence import (
    measure_event,
    measure_event_from_trace,
)
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.bgp.session import BGPTimers
from repro.topology.builders import clique


def _one_withdrawal(sdn_count, seed, *, n=8, measurer=measure_event,
                    **config_kwargs):
    """One fig2-style withdrawal trial, with a pluggable measurer."""
    scenario = WithdrawalScenario()
    topology = scenario.topology(n)
    members = sdn_set_for(topology, sdn_count, scenario.reserved_legacy)
    config = paper_config(seed=seed, mrai=5.0, **config_kwargs)
    exp = Experiment(
        topology, sdn_members=members, config=config, name=scenario.name,
    ).build()
    scenario.configure(exp)
    exp.start()
    scenario.prepare(exp)
    return exp, measurer(exp, lambda: scenario.event(exp))


class TestTrackerMatchesTraceScan:
    """Acceptance: streaming tracker bit-identical to the trace scan."""

    @pytest.mark.parametrize("sdn_count", [0, 3, 7])
    def test_fig2_withdrawal_sweep_equivalence(self, sdn_count):
        for seed in (100, 101):
            _, streaming = _one_withdrawal(sdn_count, seed)
            _, scanned = _one_withdrawal(
                sdn_count, seed, measurer=measure_event_from_trace,
            )
            assert dataclasses.asdict(streaming) == dataclasses.asdict(scanned)

    def test_equivalence_on_same_experiment(self):
        """Scan and stream read the *same* run: identical, not just
        statistically equal."""
        scenario = WithdrawalScenario()
        topology = scenario.topology(8)
        exp = Experiment(
            topology,
            sdn_members=sdn_set_for(topology, 4, scenario.reserved_legacy),
            config=paper_config(seed=7, mrai=5.0),
            name=scenario.name,
        ).build()
        exp.start()
        scenario.prepare(exp)
        t_event = exp.now
        scenario.event(exp)
        exp.wait_converged()
        tracker = exp.tracker
        trace = exp.net.trace
        from repro.eventsim import ROUTE_AFFECTING
        from repro.framework.convergence import STATE_CHANGING

        assert tracker.last_activity_since(t_event) == trace.last_time(
            ROUTE_AFFECTING, since=t_event
        )
        assert tracker.last_state_change_since(t_event) == trace.last_time(
            STATE_CHANGING, since=t_event
        )
        assert tracker.counters() == trace.counts

    def test_no_event_yields_none_since(self):
        exp = Experiment(
            clique(4),
            config=ExperimentConfig(seed=1, timers=BGPTimers(mrai=1.0)),
        ).start()
        exp.announce(1)
        exp.wait_converged()
        assert exp.tracker.last_activity_since(exp.now + 1.0) is None


class TestMetricsOnlyRun:
    """Acceptance: trace_level='off' measures identically, retains nothing."""

    def test_16_as_clique_withdrawal_same_times_zero_records(self):
        results = {}
        for level in ("full", "off"):
            scenario = WithdrawalScenario()
            topology = scenario.topology(16)
            members = sdn_set_for(topology, 8, scenario.reserved_legacy)
            config = paper_config(
                seed=42, trace_level=level, metrics=(level == "off"),
            )
            m = run_scenario_once(scenario, topology, members, config)
            results[level] = m
        full, off = results["full"], results["off"]
        assert off.convergence_time == full.convergence_time
        assert off.state_convergence_time == full.state_convergence_time
        assert off.updates_tx == full.updates_tx
        assert dataclasses.asdict(off) == dataclasses.asdict(full)

    def test_off_retains_no_trace_records(self):
        exp, m = _one_withdrawal(4, 5, trace_level="off")
        assert m.convergence_time > 0
        assert exp.net.trace.records == []
        # ...but the bus-side counts are still complete
        assert exp.net.bus.count("bgp.update.tx") > 0

    def test_route_level_keeps_only_route_affecting(self):
        from repro.eventsim import ROUTE_AFFECTING

        exp, _ = _one_withdrawal(4, 5, trace_level="route")
        records = exp.net.trace.records
        assert records
        assert all(r.category in ROUTE_AFFECTING for r in records)

    def test_metrics_snapshot_attached(self):
        exp, _ = _one_withdrawal(2, 3, metrics=True)
        snap = exp.metrics_snapshot()
        assert snap is not None
        assert any(
            k.startswith("records_total{category=bgp.update.tx")
            for k in snap["counters"]
        )


class TestMeasurementOrdering:
    """Satellite: t_converged >= t_state_converged >= t_event, always."""

    @pytest.mark.parametrize("sdn_count", [0, 4, 7])
    def test_withdrawal_ordering(self, sdn_count):
        _, m = _one_withdrawal(sdn_count, 11)
        assert m.t_converged >= m.t_state_converged >= m.t_event

    def test_no_op_event_uses_event_time_sentinel(self):
        exp = Experiment(
            clique(4),
            config=ExperimentConfig(seed=1, timers=BGPTimers(mrai=1.0)),
        ).start()
        exp.announce(1)
        exp.wait_converged()
        m = measure_event(exp, lambda: None)
        # no state change: both instants collapse to the event time
        assert m.t_converged == m.t_state_converged == m.t_event
        assert m.state_convergence_time == 0.0

    def test_explicit_none_resolves_to_t_event(self):
        from repro.framework.convergence import ConvergenceMeasurement

        m = ConvergenceMeasurement(
            t_event=12.5, t_converged=12.5, t_settled=13.0,
        )
        assert m.t_state_converged == 12.5
