"""Unit tests for probe streams and loss measurement."""

import pytest

from repro.bgp.session import BGPTimers
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.framework.traffic import ProbeStream
from repro.topology.builders import clique, line


def experiment(topo=None, mrai=1.0, seed=1):
    return Experiment(
        topo if topo is not None else clique(3),
        config=ExperimentConfig(seed=seed, timers=BGPTimers(mrai=mrai)),
    ).start()


def stream_between(exp, src_asn, dst_asn, interval=0.1):
    src = exp.add_host(src_asn)
    dst = exp.add_host(dst_asn)
    return ProbeStream(src, dst, interval=interval)


class TestProbeStream:
    def test_steady_state_no_loss(self):
        exp = experiment()
        stream = stream_between(exp, 1, 2)
        stream.start(duration=5.0)
        exp.net.sim.run(until=exp.now + 6.0)
        report = stream.report()
        assert report.sent >= 49
        assert report.loss_rate == 0.0

    def test_duration_bounds_probe_count(self):
        exp = experiment()
        stream = stream_between(exp, 1, 2, interval=0.5)
        stream.start(duration=2.0)
        exp.net.sim.run(until=exp.now + 5.0)
        assert stream.report().sent <= 5

    def test_stop_halts_stream(self):
        exp = experiment()
        stream = stream_between(exp, 1, 2)
        stream.start()
        exp.net.sim.run(until=exp.now + 1.0)
        stream.stop()
        sent_after_stop = stream.report().sent
        exp.net.sim.run(until=exp.now + 2.0)
        assert stream.report().sent == sent_after_stop

    def test_probes_are_background(self):
        """A running stream must not prevent settlement detection."""
        exp = experiment()
        stream = stream_between(exp, 1, 2)
        stream.start()
        settled_at = exp.wait_converged()
        assert settled_at <= exp.now

    def test_double_start_rejected(self):
        exp = experiment()
        stream = stream_between(exp, 1, 2)
        stream.start()
        with pytest.raises(RuntimeError):
            stream.start()

    def test_invalid_interval(self):
        exp = experiment()
        src, dst = exp.add_host(1), exp.add_host(2)
        with pytest.raises(ValueError):
            ProbeStream(src, dst, interval=0.0)


class TestLossMeasurement:
    def test_partition_causes_total_loss_window(self):
        exp = experiment(topo=line(3))
        stream = stream_between(exp, 1, 3)
        stream.start()
        exp.net.sim.run(until=exp.now + 2.0)
        exp.fail_link(2, 3)  # no alternative on a line: hard outage
        exp.net.sim.run(until=exp.now + 2.0)
        stream.stop()
        report = stream.report()
        assert report.lost > 0
        assert report.loss_windows
        assert report.longest_outage > 1.0

    def test_failover_loss_window_is_bounded(self):
        """On a clique a failed link only loses packets briefly."""
        exp = experiment(topo=clique(4), mrai=1.0)
        stream = stream_between(exp, 2, 1)
        stream.start()
        exp.net.sim.run(until=exp.now + 2.0)
        exp.fail_link(1, 2)
        exp.wait_converged()
        exp.net.sim.run(until=exp.now + 2.0)
        stream.stop()
        report = stream.report()
        # recovery happened: the last probes got through again
        assert report.received > 0
        assert report.loss_rate < 0.5

    def test_loss_windows_group_consecutive_seqs(self):
        exp = experiment(topo=line(3))
        stream = stream_between(exp, 1, 3)
        stream.start()
        exp.net.sim.run(until=exp.now + 1.0)
        exp.fail_link(2, 3)
        exp.net.sim.run(until=exp.now + 1.0)
        exp.restore_link(2, 3)
        exp.wait_converged()
        exp.net.sim.run(until=exp.now + 2.0)
        stream.stop()
        report = stream.report()
        # one contiguous outage -> one (or very few) loss windows
        assert 1 <= len(report.loss_windows) <= 3
