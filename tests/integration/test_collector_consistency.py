"""Integration: the route collector's view vs ground truth.

The paper measures convergence from the collector's BGP update feed;
these tests pin down that the feed is a faithful, ordered record of the
network's update activity — the property the measurement relies on.
"""

import pytest

from repro.bgp.session import BGPTimers
from repro.framework.convergence import measure_event
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.builders import clique


@pytest.fixture
def exp():
    return Experiment(
        clique(5),
        config=ExperimentConfig(seed=4, timers=BGPTimers(mrai=2.0)),
    ).start()


class TestCollectorVsTrace:
    def test_collector_hears_every_legacy_router(self, exp):
        exp.announce(1)
        exp.wait_converged()
        heard = {u.peer_name for u in exp.collector.feed}
        assert heard == {"as1", "as2", "as3", "as4", "as5"}

    def test_withdrawal_event_visible_in_feed(self, exp):
        prefix = exp.announce(1)
        exp.wait_converged()
        t0 = exp.now
        exp.withdraw(1, prefix)
        exp.wait_converged()
        touched = exp.collector.updates_for(prefix, since=t0)
        assert touched
        assert any(u.is_withdrawal for u in touched)

    def test_collector_last_update_close_to_trace_convergence(self, exp):
        """Collector-feed convergence ~ trace convergence (within the
        collector link latency + zero-MRAI reporting delay)."""
        prefix = exp.announce(1)
        exp.wait_converged()
        m = measure_event(exp, lambda: exp.withdraw(1, prefix))
        feed_last = exp.collector.last_update_time(since=m.t_event)
        assert feed_last is not None
        assert abs(feed_last - m.t_converged) < 1.0

    def test_feed_is_time_ordered(self, exp):
        exp.announce(1)
        exp.wait_converged()
        exp.withdraw(1, exp.as_prefix(1))
        exp.wait_converged()
        times = [u.time for u in exp.collector.feed]
        assert times == sorted(times)

    def test_final_best_paths_match_collected_announcements(self, exp):
        """The last path each router announced to the collector equals
        its Loc-RIB best at convergence."""
        prefix = exp.announce(1)
        exp.wait_converged()
        last_paths = {}
        for update in exp.collector.feed:
            for p, path in update.announced:
                if p == prefix:
                    last_paths[update.peer_name] = path
            if prefix in update.withdrawn:
                last_paths[update.peer_name] = None
        for asn in (2, 3, 4, 5):
            node = exp.node(asn)
            best = node.loc_rib.get(prefix)
            expected = f"{asn} {best.attrs.as_path}" if best else None
            assert last_paths.get(node.name) == expected, node.name
