"""Integration: scripted timelines + loss measurement + detection
working together — the full monitoring workflow of the paper's demo."""

import pytest

from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework import (
    EventSchedule,
    Experiment,
    ExperimentConfig,
    ProbeStream,
    compare_with_oracle,
)
from repro.topology.builders import clique


def build(sdn=(), seed=1, mrai=2.0):
    config = ExperimentConfig(
        seed=seed,
        timers=BGPTimers(mrai=mrai),
        controller=ControllerConfig(recompute_delay=0.2),
    )
    return Experiment(clique(6), sdn_members=set(sdn), config=config).start()


class TestDemoWorkflow:
    def test_stream_survives_scripted_failures(self):
        """The demo: a video-like stream while the topology is scripted."""
        exp = build(sdn=(5, 6))
        sender = exp.add_host(2)
        receiver = exp.add_host(1)
        exp.wait_converged()
        stream = ProbeStream(sender, receiver, interval=0.05)
        stream.start()
        (
            EventSchedule()
            .fail_link(1, 2, at=2.0)
            .fail_link(1, 3, at=10.0)
            .restore_link(1, 2, at=20.0)
            .run(exp)
        )
        exp.net.sim.run(until=exp.now + 3.0)
        stream.stop()
        report = stream.report()
        # the stream recovered after each event: overall loss is small
        assert report.sent > 300
        assert report.loss_rate < 0.1
        # and the last probes made it through
        last_seq = max(stream.sent)
        received_seqs = {p.seq for p in receiver.probes_received}
        assert any(s in received_seqs for s in range(last_seq - 5, last_seq + 1))

    def test_detector_on_scripted_run_matches_oracle(self):
        exp = build(sdn=(5, 6), mrai=2.0)
        detection = compare_with_oracle(
            exp, lambda: exp.fail_link(1, 2), silence_window=30.0,
        )
        assert not detection.premature
        assert detection.t_last_activity == pytest.approx(
            detection.t_oracle
        )

    def test_per_event_reports_are_isolated(self):
        exp = build()
        reports = (
            EventSchedule()
            .announce(1, at=0.0, label="first")
            .announce(2, at=60.0, label="second")
            .run(exp)
        )
        # similar events should produce similar update counts — the
        # second report must not accumulate the first's activity
        first, second = reports
        assert 0 < second.updates_tx <= 2 * first.updates_tx
