"""End-to-end data-plane integration: packets across the hybrid network."""

import pytest

from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.framework.traffic import ProbeStream
from repro.topology.builders import clique, line, ring


def build(topo, sdn=(), seed=1, mrai=1.0, recompute=0.2):
    config = ExperimentConfig(
        seed=seed,
        timers=BGPTimers(mrai=mrai),
        controller=ControllerConfig(recompute_delay=recompute),
    )
    return Experiment(topo, sdn_members=set(sdn), config=config).start()


class TestCrossBoundaryPaths:
    def test_legacy_to_sdn_host_ping(self):
        exp = build(clique(6), sdn=(4, 5, 6))
        rtt = exp.ping(1, 5)
        assert rtt is not None and rtt > 0

    def test_sdn_to_legacy_host_ping(self):
        exp = build(clique(6), sdn=(4, 5, 6))
        rtt = exp.ping(5, 1)
        assert rtt is not None

    def test_sdn_to_sdn_ping(self):
        exp = build(clique(6), sdn=(4, 5, 6))
        assert exp.ping(4, 6) is not None

    def test_path_through_cluster_transit(self):
        # line 1 - 2 - 3 - 4 with the middle in the cluster: legacy ends
        # must communicate THROUGH the SDN switches.
        exp = build(line(4), sdn=(2, 3))
        walk = exp.reachable(1, 4)
        assert walk.reached
        assert walk.hops == ["as1", "as2", "as3", "as4"]

    def test_probe_stream_across_boundary(self):
        exp = build(clique(6), sdn=(4, 5, 6))
        src = exp.add_host(1)
        dst = exp.add_host(5)
        exp.wait_converged()
        stream = ProbeStream(src, dst, interval=0.05)
        stream.start(duration=2.0)
        exp.net.sim.run(until=exp.now + 3.0)
        report = stream.report()
        assert report.sent >= 35
        assert report.loss_rate == 0.0


class TestFailureRecovery:
    def test_legacy_link_failure_reroutes_through_cluster(self):
        # ring 1-2-3-4-5-1 with 3,4 in the cluster; failing 1-2 forces
        # 2's traffic to 1 the long way through the cluster.
        exp = build(ring(5), sdn=(3, 4), mrai=1.0)
        exp.fail_link(1, 2)
        exp.wait_converged()
        walk = exp.reachable(2, 1)
        assert walk.reached
        assert "as3" in walk.hops and "as4" in walk.hops

    def test_cluster_egress_failure_recovers(self):
        exp = build(clique(6), sdn=(4, 5, 6))
        prefix = exp.announce(1)
        exp.wait_converged()
        # kill as4's direct egress to the origin
        exp.fail_link(1, 4)
        exp.wait_converged()
        walk = exp.net.trace_path(exp.node(4), prefix.host(0))
        assert walk.reached, walk.reason

    def test_no_transient_loops_after_convergence(self):
        exp = build(clique(6), sdn=(4, 5, 6))
        exp.fail_link(1, 2)
        exp.fail_link(3, 5)
        exp.wait_converged()
        matrix = exp.connectivity_matrix()
        for (src, dst), walk in matrix.items():
            assert walk.reached, (src, dst, walk.reason, walk.hops)
            assert len(walk.hops) == len(set(walk.hops))  # loop-free

    def test_node_outage_isolates_only_that_node(self):
        exp = build(clique(5), sdn=(4, 5))
        exp.fail_node(2)
        exp.wait_converged()
        for other in (1, 3, 4, 5):
            assert not exp.reachable(other, 2).reached
        for src in (1, 3, 4, 5):
            for dst in (1, 3, 4, 5):
                if src != dst:
                    assert exp.reachable(src, dst).reached


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def run():
            exp = build(clique(5), sdn=(4, 5), seed=7)
            prefix = exp.announce(1)
            exp.wait_converged()
            exp.withdraw(1, prefix)
            exp.wait_converged()
            return [
                (round(r.time, 9), r.category, r.node)
                for r in exp.net.trace.records
            ]

        assert run() == run()

    def test_seed_changes_timing(self):
        def run(seed):
            exp = build(clique(5), seed=seed, mrai=5.0)
            prefix = exp.announce(1)
            exp.wait_converged()
            exp.withdraw(1, prefix)
            return exp.wait_converged()

        assert run(1) != run(2)
