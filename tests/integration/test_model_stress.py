"""Property-based whole-system stress: random topology, random events.

Hypothesis drives the emulator through arbitrary small scenarios and
checks the global invariants that must hold regardless of what happened:

1. the network always settles (no livelock / oscillation);
2. forwarding is loop-free for every reachable pair;
3. every Loc-RIB best route is backed by a FIB entry and vice versa;
4. no AS ever selects a path containing its own ASN;
5. reachability in the data plane matches the physical graph's
   connectivity for baseline prefixes (if a physical path exists, the
   routed path works; if none exists, no FIB magic invents one).
"""

import networkx as nx
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bgp.router import BGPRouter
from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.model import Topology


@st.composite
def scenario(draw):
    """A random small experiment + event script."""
    n = draw(st.integers(min_value=3, max_value=6))
    # random connected graph: spanning tree + extras
    edges = set()
    for i in range(2, n + 1):
        j = draw(st.integers(min_value=1, max_value=i - 1))
        edges.add((j, i))
    extra = draw(st.integers(min_value=0, max_value=4))
    for _ in range(extra):
        a = draw(st.integers(min_value=1, max_value=n))
        b = draw(st.integers(min_value=1, max_value=n))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    sdn_count = draw(st.integers(min_value=0, max_value=max(0, n - 2)))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    # event script: sequence of (kind, payload) operations
    n_events = draw(st.integers(min_value=1, max_value=4))
    events = []
    for _ in range(n_events):
        kind = draw(st.sampled_from(["withdraw_announce", "fail", "restore"]))
        if kind == "withdraw_announce":
            events.append((kind, draw(st.integers(min_value=1, max_value=n))))
        else:
            edge = draw(st.sampled_from(sorted(edges)))
            events.append((kind, edge))
    return n, sorted(edges), sdn_count, seed, events


def run_scenario(n, edges, sdn_count, seed, events):
    topo = Topology(name="random")
    for asn in range(1, n + 1):
        topo.add_as(asn)
    for a, b in edges:
        topo.add_link(a, b)
    sdn = set(range(n, n - sdn_count, -1))
    config = ExperimentConfig(
        seed=seed,
        timers=BGPTimers(mrai=1.0),
        controller=ControllerConfig(recompute_delay=0.1),
        with_collector=False,
    )
    exp = Experiment(topo, sdn_members=sdn, config=config).start()
    for kind, payload in events:
        if kind == "withdraw_announce":
            asn = payload
            exp.withdraw(asn, exp.as_prefix(asn))
            exp.wait_converged()
            exp.announce(asn, exp.as_prefix(asn))
        elif kind == "fail":
            exp.fail_link(*payload)
        else:  # restore
            exp.restore_link(*payload)
        exp.wait_converged()   # invariant 1: always settles
    return exp


@given(scenario())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_invariants_hold_after_any_event_sequence(params):
    n, edges, sdn_count, seed, events = params
    exp = run_scenario(n, edges, sdn_count, seed, events)

    # physical connectivity ground truth (only up links)
    graph = nx.Graph()
    graph.add_nodes_from(exp.topology.asns)
    for link in exp.net.links:
        if link.kind == "phys" and link.up:
            a = int(link.a.name[2:])
            b = int(link.b.name[2:])
            graph.add_edge(a, b)

    for src in exp.topology.asns:
        for dst in exp.topology.asns:
            if src == dst:
                continue
            walk = exp.reachable(src, dst)
            physically_connected = nx.has_path(graph, src, dst)
            if physically_connected:
                assert walk.reached, (src, dst, walk.reason, walk.hops)
                # invariant 2: loop-free
                assert len(walk.hops) == len(set(walk.hops))
            else:
                assert not walk.reached, (src, dst, walk.hops)

    for node in exp.as_nodes():
        if not isinstance(node, BGPRouter):
            continue
        for route in node.loc_rib:
            # invariant 4: own-ASN never in the selected path
            assert not route.attrs.as_path.contains(node.asn)
            # invariant 3: FIB backing
            entry = node.fib.get(route.prefix)
            assert entry is not None
        for entry in node.fib:
            if entry.source.startswith("bgp"):
                assert node.loc_rib.get(entry.prefix) is not None
