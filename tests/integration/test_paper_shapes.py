"""Scaled-down versions of the paper's headline results.

The full reproductions live in ``benchmarks/``; these tests assert the
qualitative *shapes* on smaller instances so they run in CI time:

- Fig. 2: withdrawal convergence falls ~linearly with the SDN fraction;
- §4: announcement shows no such improvement;
- §4: fail-over improvement is bounded (exploration depth is capped by
  the primary/backup path-length gap).
"""

import pytest

from repro.analysis.stats import linear_fit
from repro.experiments.common import (
    AnnouncementScenario,
    WithdrawalScenario,
    paper_config,
    run_fraction_sweep,
    run_scenario_once,
    sdn_set_for,
)
from repro.topology.builders import clique

MRAI = 5.0  # scaled down from 30s; dynamics identical, CI-friendly


@pytest.fixture(scope="module")
def withdrawal_sweep_result():
    return run_fraction_sweep(
        WithdrawalScenario,
        n=8,
        sdn_counts=[0, 2, 4, 6],
        runs=3,
        mrai=MRAI,
        recompute_delay=0.2,
    )


class TestFig2Shape:
    def test_convergence_decreases_monotonically(self, withdrawal_sweep_result):
        medians = withdrawal_sweep_result.medians()
        assert all(a > b for a, b in zip(medians, medians[1:])), medians

    def test_trend_is_linear(self, withdrawal_sweep_result):
        fit = withdrawal_sweep_result.fit()
        assert fit.is_decreasing
        assert fit.r_squared > 0.9, (
            withdrawal_sweep_result.medians(), fit
        )

    def test_substantial_total_reduction(self, withdrawal_sweep_result):
        assert withdrawal_sweep_result.reduction_at_full() > 0.5

    def test_zero_percent_dominated_by_mrai_exploration(
        self, withdrawal_sweep_result
    ):
        baseline = withdrawal_sweep_result.points[0].stats.median
        # several MRAI rounds of path exploration
        assert baseline > 2 * MRAI

    def test_update_count_shrinks_with_deployment(self, withdrawal_sweep_result):
        updates = [p.median_updates for p in withdrawal_sweep_result.points]
        assert updates[0] > updates[-1]


class TestAnnouncementShape:
    def test_announcement_gets_no_linear_improvement(self):
        """§4: announcement converges fast already; SDN cannot help much."""
        times = {}
        for k in (0, 4):
            scenario = AnnouncementScenario()
            topo = scenario.topology(8)
            members = sdn_set_for(topo, k, scenario.reserved_legacy)
            m = run_scenario_once(
                scenario, topo, members,
                paper_config(seed=11, mrai=MRAI, recompute_delay=0.2),
            )
            times[k] = m.convergence_time
        # pure BGP announcement floods in well under one MRAI
        assert times[0] < MRAI
        # and SDN deployment does not produce a large absolute reduction
        assert abs(times[0] - times[4]) < MRAI


class TestWithdrawalVsAnnouncement:
    def test_withdrawal_much_slower_than_announcement_in_pure_bgp(self):
        config = paper_config(seed=5, mrai=MRAI)
        wd = WithdrawalScenario()
        topo = wd.topology(8)
        wd_m = run_scenario_once(wd, topo, frozenset(), config)
        an = AnnouncementScenario()
        topo2 = an.topology(8)
        an_m = run_scenario_once(
            an, topo2, frozenset(), paper_config(seed=5, mrai=MRAI)
        )
        assert wd_m.convergence_time > 3 * an_m.convergence_time
