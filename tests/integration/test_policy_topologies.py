"""Integration tests: realistic policies on dataset-derived topologies."""

import pytest

from repro.bgp.policy import Relationship
from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.caida import synthetic_caida_topology
from repro.topology.iplane import synthetic_iplane_topology


def build(topo, sdn=(), policy="gao_rexford", seed=1, mrai=1.0):
    config = ExperimentConfig(
        seed=seed,
        policy_mode=policy,
        timers=BGPTimers(mrai=mrai),
        controller=ControllerConfig(recompute_delay=0.2),
    )
    return Experiment(topo, sdn_members=set(sdn), config=config).start()


@pytest.fixture(scope="module")
def caida_exp():
    topo = synthetic_caida_topology(tier1=3, transit=4, stubs=6, seed=3)
    return build(topo, policy="gao_rexford")


class TestCaidaGaoRexford:
    def test_full_reachability_under_valley_free_policy(self, caida_exp):
        assert caida_exp.all_reachable()

    def test_no_valley_paths_in_loc_ribs(self, caida_exp):
        """Verify every selected path is valley-free on the real topology."""
        topo = caida_exp.topology
        for node in caida_exp.as_nodes():
            for route in node.loc_rib:
                path = [node.asn] + list(route.attrs.as_path)
                assert _valley_free(topo, path), (node.name, path)

    def test_stub_routes_via_provider(self, caida_exp):
        topo = caida_exp.topology
        stubs = [s.asn for s in topo.ases if s.role == "stub"]
        stub = stubs[0]
        providers = set(topo.providers_of(stub))
        node = caida_exp.node(stub)
        default_like = [
            r for r in node.loc_rib if r.attrs.as_path.length > 0
        ]
        assert default_like
        assert all(
            r.attrs.as_path.first_as in providers for r in default_like
        )


def _valley_free(topo, path):
    """Gao-Rexford validity: up* (peer)? down* when read origin-to-here.

    ``path`` is [holder, ..., origin]; walk from origin upward.
    """
    hops = list(reversed(path))
    seen_peak = False
    for a, b in zip(hops, hops[1:]):
        link = topo.link_between(a, b)
        if link is None:
            return False
        rel = link.relationship_for(a)  # b as seen from a
        if rel is Relationship.PROVIDER:  # going up
            if seen_peak:
                return False
        elif rel is Relationship.PEER:
            if seen_peak:
                return False
            seen_peak = True
        else:  # CUSTOMER or FLAT: going down
            seen_peak = True
    return True


class TestIplane:
    def test_latencies_shape_ping_times(self):
        topo = synthetic_iplane_topology(n_as=8, seed=2)
        exp = build(topo, policy="flat")
        assert exp.all_reachable()
        rtt = exp.ping(topo.asns[0], topo.asns[-1])
        assert rtt is not None and rtt > 0

    def test_hybrid_on_iplane_topology(self):
        topo = synthetic_iplane_topology(n_as=8, seed=2)
        sdn = set(topo.asns[-3:])
        exp = build(topo, sdn=sdn, policy="flat")
        assert exp.all_reachable()


class TestHybridGaoRexford:
    def test_cluster_respects_valley_free_export(self):
        """A peer-learned cluster route must not be exported to a peer."""
        topo = synthetic_caida_topology(tier1=3, transit=4, stubs=6, seed=3)
        # convert two transit ASes (4 and 5 by construction)
        exp = build(topo, sdn=(4, 5), policy="gao_rexford")
        assert exp.all_reachable()
        for node in exp.as_nodes():
            if hasattr(node, "loc_rib"):
                for route in node.loc_rib:
                    path = [node.asn] + list(route.attrs.as_path)
                    assert _valley_free(exp.topology, path), (node.name, path)
