"""Scale and stress integration tests.

Larger topologies, event storms, and repeated failure/recovery cycles —
guarding the invariants that matter at scale: convergence always
terminates, forwarding stays loop-free, RIBs stay mutually consistent,
and no stale state leaks across events.
"""

import pytest

from repro.bgp.router import BGPRouter
from repro.bgp.session import BGPTimers
from repro.controller.idr import ControllerConfig
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.topology.builders import barabasi_albert, clique, ring
from repro.topology.caida import synthetic_caida_topology


def build(topo, sdn=(), seed=1, mrai=1.0, policy="flat"):
    config = ExperimentConfig(
        seed=seed,
        policy_mode=policy,
        timers=BGPTimers(mrai=mrai),
        controller=ControllerConfig(recompute_delay=0.2),
    )
    return Experiment(topo, sdn_members=set(sdn), config=config).start()


class TestLargerTopologies:
    def test_40_as_caida_with_policies_converges(self):
        topo = synthetic_caida_topology(tier1=4, transit=10, stubs=26, seed=9)
        exp = build(topo, policy="gao_rexford", mrai=2.0)
        assert exp.all_reachable()

    def test_30_as_ba_hybrid_converges(self):
        topo = barabasi_albert(30, 2, seed=4)
        sdn = set(topo.asns[-10:])
        exp = build(topo, sdn=sdn, mrai=2.0)
        assert exp.all_reachable()

    def test_large_ring_diameter_paths(self):
        exp = build(ring(20), mrai=1.0)
        walk = exp.reachable(1, 11)
        assert walk.reached
        assert len(walk.hops) == 11  # half the ring: shortest path


class TestRibConsistency:
    def test_fib_matches_loc_rib_everywhere(self):
        exp = build(clique(8), sdn=(7, 8), mrai=1.0)
        exp.announce(1)
        exp.fail_link(2, 3)
        exp.wait_converged()
        for node in exp.as_nodes():
            if not isinstance(node, BGPRouter):
                continue
            for route in node.loc_rib:
                entry = node.fib.get(route.prefix)
                assert entry is not None, (node.name, route.prefix)
                if route.is_local:
                    assert entry.link is None
                else:
                    assert entry.via == route.peer_name

    def test_no_fib_entry_without_loc_rib_route(self):
        exp = build(clique(6), mrai=1.0)
        prefix = exp.announce(1)
        exp.wait_converged()
        exp.withdraw(1, prefix)
        exp.wait_converged()
        for node in exp.as_nodes():
            if isinstance(node, BGPRouter):
                for entry in node.fib:
                    if entry.source.startswith("bgp"):
                        assert node.loc_rib.get(entry.prefix) is not None

    def test_adj_rib_out_reflects_actual_peer_state(self):
        """What X believes it told Y == what Y actually holds from X."""
        exp = build(clique(5), mrai=1.0)
        exp.announce(1)
        exp.fail_link(1, 2)
        exp.wait_converged()
        nodes = {n.name: n for n in exp.as_nodes()}
        for node in exp.as_nodes():
            for session in node.sessions.values():
                if not session.established:
                    continue
                peer = nodes.get(session.peer_name)
                if peer is None or not isinstance(peer, BGPRouter):
                    continue
                peer_session = peer.session_on(session.link)
                if peer_session is None:
                    continue
                sent = {
                    str(p): node.adj_rib_out(session).get(p)
                    for p in node.adj_rib_out(session).prefixes()
                }
                held = {
                    str(r.prefix): r
                    for r in peer.adj_rib_in(peer_session)
                }
                assert set(sent) == set(held), (node.name, peer.name)


class TestEventStorms:
    def test_repeated_flap_cycles_stay_clean(self):
        exp = build(clique(6), sdn=(5, 6), mrai=1.0)
        prefix = exp.announce(1)
        exp.wait_converged()
        for _ in range(5):
            exp.withdraw(1, prefix)
            exp.wait_converged()
            exp.announce(1, prefix)
            exp.wait_converged()
        assert exp.all_reachable()
        for asn in (2, 5):
            walk = exp.net.trace_path(exp.node(asn), prefix.host(0))
            assert walk.reached

    def test_rolling_link_failures_and_recovery(self):
        exp = build(clique(6), sdn=(5, 6), mrai=1.0)
        pairs = [(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
        for a, b in pairs:
            exp.fail_link(a, b)
            exp.wait_converged()
        assert exp.all_reachable()  # clique has plenty of redundancy
        for a, b in pairs:
            exp.restore_link(a, b)
            exp.wait_converged()
        assert exp.all_reachable()
        for src in exp.topology.asns:
            for dst in exp.topology.asns:
                if src != dst:
                    walk = exp.reachable(src, dst)
                    assert walk.hops == [f"as{src}", f"as{dst}"], walk.hops

    def test_simultaneous_events_converge(self):
        exp = build(clique(8), sdn=(7, 8), mrai=2.0)
        prefix = exp.announce(1)
        exp.wait_converged()
        # inject three different events in the same instant
        exp.withdraw(1, prefix)
        exp.fail_link(2, 3)
        exp.announce(4)
        exp.wait_converged()
        assert exp.all_reachable()

    def test_partition_and_heal(self):
        exp = build(ring(8), sdn=(7, 8), mrai=1.0)
        exp.fail_link(1, 2)
        exp.fail_link(5, 6)  # two cuts partition a ring
        exp.wait_converged()
        assert not exp.reachable(1, 5).reached or not exp.reachable(2, 5).reached
        exp.restore_link(1, 2)
        exp.wait_converged()
        assert exp.all_reachable()


class TestQuiescence:
    def test_no_residual_foreground_work_after_convergence(self):
        exp = build(clique(8), sdn=(7, 8), mrai=5.0)
        exp.announce(1)
        exp.wait_converged()
        assert exp.net.sim.pending_foreground() == 0

    def test_trace_quiet_after_settle(self):
        exp = build(clique(6), mrai=2.0)
        exp.announce(1)
        exp.wait_converged()
        cut = exp.now
        exp.net.sim.run(until=cut + 60.0)
        assert exp.net.trace.last_time(since=cut + 1e-9) is None
