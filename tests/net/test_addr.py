"""Unit + property tests for IPv4 addresses and prefixes."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import AddressError, IPv4Address, Prefix


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        assert str(IPv4Address.parse("10.1.2.3")) == "10.1.2.3"

    def test_parse_extremes(self):
        assert IPv4Address.parse("0.0.0.0").value == 0
        assert IPv4Address.parse("255.255.255.255").value == 0xFFFFFFFF

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "01.2.3.4", ""]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.parse(bad)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)
        with pytest.raises(AddressError):
            IPv4Address(-1)

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")

    def test_addition(self):
        assert str(IPv4Address.parse("10.0.0.255") + 1) == "10.0.1.0"

    def test_hashable(self):
        assert len({IPv4Address(1), IPv4Address(1), IPv4Address(2)}) == 2


class TestPrefix:
    def test_parse_and_str_roundtrip(self):
        assert str(Prefix.parse("10.1.0.0/16")) == "10.1.0.0/16"

    def test_host_bits_are_cleared(self):
        assert str(Prefix.parse("10.1.2.3/16")) == "10.1.0.0/16"

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/x"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            Prefix.parse(bad)

    def test_contains_address(self):
        prefix = Prefix.parse("10.1.0.0/16")
        assert IPv4Address.parse("10.1.255.255") in prefix
        assert IPv4Address.parse("10.2.0.0") not in prefix

    def test_contains_more_specific_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        assert Prefix.parse("10.1.0.0/16") in outer
        assert outer not in Prefix.parse("10.1.0.0/16")

    def test_default_route_contains_everything(self):
        default = Prefix.parse("0.0.0.0/0")
        assert IPv4Address.parse("203.0.113.7") in default

    def test_hosts_skip_network_and_broadcast(self):
        hosts = list(Prefix.parse("10.0.0.0/30").hosts())
        assert [str(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]

    def test_hosts_slash31_uses_both(self):
        hosts = list(Prefix.parse("10.0.0.0/31").hosts())
        assert len(hosts) == 2

    def test_host_indexing(self):
        prefix = Prefix.parse("10.0.0.0/24")
        assert str(prefix.host(0)) == "10.0.0.1"
        assert str(prefix.host(9)) == "10.0.0.10"

    def test_host_index_out_of_range(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.0/30").host(2)

    def test_subnets(self):
        subs = list(Prefix.parse("10.0.0.0/16").subnets(18))
        assert [str(s) for s in subs] == [
            "10.0.0.0/18", "10.0.64.0/18", "10.0.128.0/18", "10.0.192.0/18",
        ]

    def test_subnets_cannot_grow(self):
        with pytest.raises(AddressError):
            list(Prefix.parse("10.0.0.0/16").subnets(8))

    def test_supernet(self):
        assert str(Prefix.parse("10.1.0.0/16").supernet(8)) == "10.0.0.0/8"

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.1.0.0/16")
        c = Prefix.parse("192.168.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_mask_values(self):
        assert Prefix.parse("0.0.0.0/0").mask == 0
        assert Prefix.parse("10.0.0.0/8").mask == 0xFF000000
        assert Prefix.parse("10.0.0.1/32").mask == 0xFFFFFFFF

    def test_ordering_by_network_then_length(self):
        prefixes = [
            Prefix.parse("10.1.0.0/16"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.0.0.0/16"),
        ]
        assert [str(p) for p in sorted(prefixes)] == [
            "10.0.0.0/8", "10.0.0.0/16", "10.1.0.0/16",
        ]


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
addresses = st.integers(min_value=0, max_value=0xFFFFFFFF).map(IPv4Address)
prefix_lengths = st.integers(min_value=0, max_value=32)


@given(addresses)
def test_address_parse_str_roundtrip(addr):
    assert IPv4Address.parse(str(addr)) == addr


@given(addresses, prefix_lengths)
def test_prefix_contains_its_base_address(addr, length):
    prefix = Prefix.of(addr, length)
    assert addr in prefix


@given(addresses, prefix_lengths)
def test_prefix_parse_str_roundtrip(addr, length):
    prefix = Prefix.of(addr, length)
    assert Prefix.parse(str(prefix)) == prefix


@given(addresses, prefix_lengths)
def test_prefix_bounds_are_consistent(addr, length):
    prefix = Prefix.of(addr, length)
    assert prefix.first_address <= prefix.last_address
    assert prefix.first_address in prefix
    assert prefix.last_address in prefix
    assert prefix.num_addresses == (
        prefix.last_address.value - prefix.first_address.value + 1
    )


@given(addresses, st.integers(min_value=1, max_value=32))
def test_address_outside_prefix_not_contained(addr, length):
    prefix = Prefix.of(addr, length)
    above = prefix.last_address.value + 1
    if above <= 0xFFFFFFFF:
        assert IPv4Address(above) not in prefix


@given(addresses, st.integers(min_value=0, max_value=31))
def test_subnet_split_partitions_prefix(addr, length):
    prefix = Prefix.of(addr, length)
    halves = list(prefix.subnets(length + 1))
    assert len(halves) == 2
    assert halves[0].num_addresses + halves[1].num_addresses == prefix.num_addresses
    assert all(h in prefix for h in halves)
    assert not halves[0].overlaps(halves[1])
