"""Unit + property tests for the FIB (longest-prefix match)."""

from hypothesis import given, strategies as st

from repro.net.addr import IPv4Address, Prefix
from repro.net.dataplane import Fib, FibEntry


def entry(prefix_text, via="x"):
    return FibEntry(Prefix.parse(prefix_text), None, via=via)


class TestFibBasics:
    def test_empty_fib_misses(self):
        assert Fib().lookup(IPv4Address.parse("10.0.0.1")) is None

    def test_exact_install_and_lookup(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/24"))
        hit = fib.lookup(IPv4Address.parse("10.0.0.77"))
        assert hit is not None and str(hit.prefix) == "10.0.0.0/24"

    def test_longest_prefix_wins(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/8", via="coarse"))
        fib.install(entry("10.1.0.0/16", via="mid"))
        fib.install(entry("10.1.2.0/24", via="fine"))
        assert fib.lookup(IPv4Address.parse("10.1.2.3")).via == "fine"
        assert fib.lookup(IPv4Address.parse("10.1.9.9")).via == "mid"
        assert fib.lookup(IPv4Address.parse("10.9.9.9")).via == "coarse"

    def test_default_route(self):
        fib = Fib()
        fib.install(entry("0.0.0.0/0", via="gw"))
        assert fib.lookup(IPv4Address.parse("203.0.113.1")).via == "gw"

    def test_install_replaces_same_prefix(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/24", via="a"))
        fib.install(entry("10.0.0.0/24", via="b"))
        assert len(fib) == 1
        assert fib.lookup(IPv4Address.parse("10.0.0.1")).via == "b"

    def test_install_returns_change_flag(self):
        fib = Fib()
        assert fib.install(entry("10.0.0.0/24", via="a")) is True
        assert fib.install(entry("10.0.0.0/24", via="a")) is False
        assert fib.install(entry("10.0.0.0/24", via="b")) is True

    def test_remove(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/24"))
        assert fib.remove(Prefix.parse("10.0.0.0/24")) is True
        assert fib.remove(Prefix.parse("10.0.0.0/24")) is False
        assert fib.lookup(IPv4Address.parse("10.0.0.1")) is None

    def test_remove_uncovers_shorter_prefix(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/8", via="coarse"))
        fib.install(entry("10.1.0.0/16", via="fine"))
        fib.remove(Prefix.parse("10.1.0.0/16"))
        assert fib.lookup(IPv4Address.parse("10.1.0.1")).via == "coarse"

    def test_version_bumps_on_changes(self):
        fib = Fib()
        v0 = fib.version
        fib.install(entry("10.0.0.0/24"))
        v1 = fib.version
        fib.remove(Prefix.parse("10.0.0.0/24"))
        assert v0 < v1 < fib.version

    def test_entries_sorted(self):
        fib = Fib()
        fib.install(entry("10.2.0.0/16"))
        fib.install(entry("10.1.0.0/16"))
        assert [str(e.prefix) for e in fib.entries()] == [
            "10.1.0.0/16", "10.2.0.0/16",
        ]

    def test_clear(self):
        fib = Fib()
        fib.install(entry("10.0.0.0/24"))
        fib.clear()
        assert len(fib) == 0


# ----------------------------------------------------------------------
# property: FIB lookup == brute-force longest match
# ----------------------------------------------------------------------
prefix_strategy = st.tuples(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
).map(lambda t: Prefix(t[0] & (0xFFFFFFFF << (32 - t[1]) if t[1] else 0), t[1]))


@given(
    st.lists(prefix_strategy, min_size=1, max_size=30, unique=True),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_lookup_matches_bruteforce(prefixes, addr_value):
    fib = Fib()
    for prefix in prefixes:
        fib.install(FibEntry(prefix, None, via=str(prefix)))
    address = IPv4Address(addr_value)
    expected = max(
        (p for p in prefixes if address in p),
        key=lambda p: p.length,
        default=None,
    )
    hit = fib.lookup(address)
    if expected is None:
        assert hit is None
    else:
        assert hit is not None
        assert hit.prefix.length == expected.length
        assert address in hit.prefix


@given(st.lists(prefix_strategy, min_size=1, max_size=20, unique=True))
def test_remove_all_empties_fib(prefixes):
    fib = Fib()
    for prefix in prefixes:
        fib.install(FibEntry(prefix, None))
    for prefix in prefixes:
        assert fib.remove(prefix)
    assert len(fib) == 0
    assert fib.lookup(IPv4Address(0)) is None
