"""Unit tests for links: latency, loss, up/down semantics."""

import pytest

from repro.net.link import Link, LinkDown
from repro.net.messages import Message
from repro.net.node import Node


def make_pair(net, latency=0.5, **kwargs):
    a = net.add_node(Node(net.sim, net.trace, "a"))
    b = net.add_node(Node(net.sim, net.trace, "b"))
    link = net.add_link(a, b, latency=latency, **kwargs)
    return a, b, link


class Probe(Node):
    def __init__(self, sim, trace, name):
        super().__init__(sim, trace, name)
        self.inbox = []

    def handle_message(self, link, message):
        self.inbox.append((self.sim.now, message))


def make_probe_pair(net, **kwargs):
    a = net.add_node(Probe(net.sim, net.trace, "a"))
    b = net.add_node(Probe(net.sim, net.trace, "b"))
    link = net.add_link(a, b, **kwargs)
    return a, b, link


class TestTransmit:
    def test_delivery_after_latency(self, net):
        a, b, link = make_probe_pair(net, latency=0.5)
        link.transmit(a, Message())
        net.sim.run()
        assert b.inbox and b.inbox[0][0] == 0.5

    def test_bidirectional(self, net):
        a, b, link = make_probe_pair(net)
        link.transmit(b, Message())
        net.sim.run()
        assert a.inbox

    def test_transmit_on_down_link_raises(self, net):
        a, b, link = make_probe_pair(net)
        link.fail()
        with pytest.raises(LinkDown):
            link.transmit(a, Message())

    def test_inflight_message_survives_link_failure(self, net):
        """Messages already on the wire are delivered (they left)."""
        a, b, link = make_probe_pair(net, latency=1.0)
        link.transmit(a, Message())
        net.sim.schedule(0.5, link.fail)
        net.sim.run()
        assert len(b.inbox) == 1

    def test_loss_drops_some_messages(self, net):
        a, b, link = make_probe_pair(net, loss=0.5)
        for _ in range(200):
            link.transmit(a, Message())
        net.sim.run()
        assert 40 < len(b.inbox) < 160
        assert link.drop_count + link.tx_count == 200

    def test_zero_loss_delivers_everything(self, net):
        a, b, link = make_probe_pair(net)
        for _ in range(50):
            link.transmit(a, Message())
        net.sim.run()
        assert len(b.inbox) == 50


class TestTopologyChecks:
    def test_self_loop_rejected(self, net):
        a = net.add_node(Node(net.sim, net.trace, "a"))
        with pytest.raises(ValueError):
            Link(a, a)

    def test_negative_latency_rejected(self, net):
        a = net.add_node(Node(net.sim, net.trace, "a"))
        b = net.add_node(Node(net.sim, net.trace, "b"))
        with pytest.raises(ValueError):
            Link(a, b, latency=-1.0)

    def test_invalid_loss_rejected(self, net):
        a = net.add_node(Node(net.sim, net.trace, "a"))
        b = net.add_node(Node(net.sim, net.trace, "b"))
        with pytest.raises(ValueError):
            Link(a, b, loss=1.0)

    def test_other_endpoint(self, net):
        a, b, link = make_pair(net)
        assert link.other(a) is b and link.other(b) is a

    def test_other_rejects_stranger(self, net):
        a, b, link = make_pair(net)
        c = net.add_node(Node(net.sim, net.trace, "c"))
        with pytest.raises(ValueError):
            link.other(c)

    def test_connects(self, net):
        a, b, link = make_pair(net)
        assert link.connects(b, a)


class TestUpDown:
    def test_state_change_notifies_both_ends(self, net):
        notified = []

        class Watcher(Node):
            def link_state_changed(self, link):
                notified.append(self.name)

        a = net.add_node(Watcher(net.sim, net.trace, "a"))
        b = net.add_node(Watcher(net.sim, net.trace, "b"))
        link = net.add_link(a, b)
        link.fail()
        assert sorted(notified) == ["a", "b"]

    def test_redundant_state_change_is_silent(self, net):
        a, b, link = make_pair(net)
        link.fail()
        count = []

        class Watcher(Node):
            def link_state_changed(self, link):
                count.append(1)

        link.fail()  # already down
        assert link.up is False

    def test_restore(self, net):
        a, b, link = make_probe_pair(net)
        link.fail()
        link.restore()
        link.transmit(a, Message())
        net.sim.run()
        assert b.inbox
