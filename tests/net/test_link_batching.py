"""Batched per-link delivery: coalescing semantics and the default.

``batch_delivery`` shares one kernel event among same-instant,
same-direction transmissions (docs/scaling.md).  The contract: per
message, loss / tx accounting / delivery order are exactly the legacy
path's; only the *number of heap events* changes.  It is opt-in —
cross-link interleaving shifts RNG draw order, so legacy digests need
it off.
"""

from repro.net.link import LinkDown
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.node import Node


class Probe(Node):
    def __init__(self, sim, trace, name):
        super().__init__(sim, trace, name)
        self.inbox = []

    def handle_message(self, link, message):
        self.inbox.append((self.sim.now, message))


def make_probe_pair(net, **kwargs):
    a = net.add_node(Probe(net.sim, net.trace, "a"))
    b = net.add_node(Probe(net.sim, net.trace, "b"))
    link = net.add_link(a, b, **kwargs)
    return a, b, link


class TestDefaultOff:
    def test_plain_links_do_not_batch(self, net):
        a, b, link = make_probe_pair(net, latency=0.5)
        assert link.batch_delivery is False
        for _ in range(3):
            link.transmit(a, Message())
        assert not link._pending
        net.sim.run()
        assert len(b.inbox) == 3
        assert link.coalesced_count == 0

    def test_network_flag_defaults_off(self, net):
        assert net.batch_delivery is False


class TestCoalescing:
    def test_same_instant_messages_share_one_event(self, net):
        a, b, link = make_probe_pair(net, latency=0.5, batch_delivery=True)
        for _ in range(5):
            link.transmit(a, Message())
        net.sim.run()
        assert [t for t, _ in b.inbox] == [0.5] * 5
        assert link.coalesced_count == 4
        # One delivery event total: the 4 followers rode the first.
        assert net.sim.events_processed == 1

    def test_send_order_preserved_within_batch(self, net):
        a, b, link = make_probe_pair(net, latency=0.1, batch_delivery=True)
        sent = [Message() for _ in range(4)]
        for message in sent:
            link.transmit(a, message)
        net.sim.run()
        assert [m for _, m in b.inbox] == sent

    def test_different_instants_do_not_coalesce(self, net):
        a, b, link = make_probe_pair(net, latency=0.5, batch_delivery=True)
        link.transmit(a, Message())
        net.sim.schedule(0.2, lambda: link.transmit(a, Message()))
        net.sim.run()
        assert [t for t, _ in b.inbox] == [0.5, 0.7]
        assert link.coalesced_count == 0

    def test_directions_batch_independently(self, net):
        a, b, link = make_probe_pair(net, latency=0.5, batch_delivery=True)
        link.transmit(a, Message())
        link.transmit(b, Message())
        link.transmit(a, Message())
        net.sim.run()
        assert len(b.inbox) == 2 and len(a.inbox) == 1
        assert link.coalesced_count == 1

    def test_background_and_foreground_do_not_mix(self, net):
        # A background batch must not lend its (convergence-invisible)
        # kernel event to foreground traffic.
        a, b, link = make_probe_pair(net, latency=0.5, batch_delivery=True)
        link.transmit(a, Message(), background=True)
        link.transmit(a, Message())
        assert link.coalesced_count == 0
        assert net.sim.pending_foreground() == 1
        net.sim.run()
        assert len(b.inbox) == 2

    def test_latency_change_mid_instant_splits_batches(self, net):
        a, b, link = make_probe_pair(net, latency=0.5, batch_delivery=True)
        link.transmit(a, Message())
        link.set_latency(0.8)
        link.transmit(a, Message())
        net.sim.run()
        assert [t for t, _ in b.inbox] == [0.5, 0.8]
        assert link.coalesced_count == 0


class TestLegacyInvariants:
    def test_loss_is_still_per_message(self, net):
        a, b, link = make_probe_pair(net, loss=0.5, batch_delivery=True)
        for _ in range(200):
            link.transmit(a, Message())
        net.sim.run()
        assert 40 < len(b.inbox) < 160
        assert link.drop_count + link.tx_count == 200
        assert len(b.inbox) == link.tx_count

    def test_down_link_still_raises(self, net):
        a, b, link = make_probe_pair(net, batch_delivery=True)
        link.fail()
        try:
            link.transmit(a, Message())
        except LinkDown:
            pass
        else:
            raise AssertionError("transmit on a down link must raise")

    def test_zero_latency_reply_opens_fresh_batch(self, net):
        # A reply sent from inside receive() lands at the same instant
        # and the same key shape as the spent batch — it must be
        # delivered via a new event, not vanish into the popped bucket.
        class Echo(Probe):
            def handle_message(self, link, message):
                super().handle_message(link, message)
                if self.name == "b":
                    link.transmit(self, Message())

        a = net.add_node(Echo(net.sim, net.trace, "a"))
        b = net.add_node(Echo(net.sim, net.trace, "b"))
        link = net.add_link(a, b, latency=0.0, batch_delivery=True)
        link.transmit(a, Message())
        net.sim.run()
        assert len(b.inbox) == 1 and len(a.inbox) == 1


class TestNetworkWiring:
    def test_network_flag_propagates_to_links(self):
        net = Network(seed=1, batch_delivery=True)
        a, b, link = make_probe_pair(net)
        assert link.batch_delivery is True

    def test_explicit_link_flag_wins(self):
        net = Network(seed=1, batch_delivery=True)
        a, b, link = make_probe_pair(net, batch_delivery=False)
        assert link.batch_delivery is False
