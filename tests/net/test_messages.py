"""Unit tests for base message/packet types."""

from repro.net.addr import IPv4Address
from repro.net.messages import Packet, PING_PROTO, PROBE_PROTO


class TestPacket:
    def make(self, **kwargs):
        defaults = dict(
            src=IPv4Address.parse("10.0.0.1"),
            dst=IPv4Address.parse("10.0.1.1"),
        )
        defaults.update(kwargs)
        return Packet(**defaults)

    def test_packet_ids_unique(self):
        a, b = self.make(), self.make()
        assert a.packet_id != b.packet_id

    def test_default_ttl(self):
        assert self.make().ttl == 64

    def test_describe_mentions_endpoints(self):
        text = self.make(proto=PROBE_PROTO, seq=9).describe()
        assert "10.0.0.1" in text and "10.0.1.1" in text
        assert "seq=9" in text

    def test_hops_start_empty(self):
        assert self.make().hops == []

    def test_proto_constants_distinct(self):
        assert PING_PROTO != PROBE_PROTO
