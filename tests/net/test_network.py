"""Unit tests for the Network container and data-plane walks."""

import pytest

from repro.net.addr import IPv4Address, Prefix
from repro.net.dataplane import FibEntry
from repro.net.node import Node


def build_line(net, n=3):
    nodes = []
    for i in range(1, n + 1):
        node = net.add_node(Node(net.sim, net.trace, f"n{i}"))
        node.address = IPv4Address.parse(f"10.0.{i}.1")
        node.add_local_prefix(Prefix.parse(f"10.0.{i}.0/24"))
        nodes.append(node)
    links = [net.add_link(nodes[i], nodes[i + 1]) for i in range(n - 1)]
    for i, node in enumerate(nodes):
        for j in range(n):
            if i == j:
                continue
            out = links[i] if j > i else links[i - 1]
            node.fib.install(
                FibEntry(Prefix.parse(f"10.0.{j + 1}.0/24"), out, via="")
            )
    return nodes, links


class TestInventory:
    def test_duplicate_node_name_rejected(self, net):
        net.add_node(Node(net.sim, net.trace, "x"))
        with pytest.raises(ValueError):
            net.add_node(Node(net.sim, net.trace, "x"))

    def test_get_unknown_raises(self, net):
        with pytest.raises(KeyError):
            net.get("ghost")

    def test_add_link_by_name(self, net):
        net.add_node(Node(net.sim, net.trace, "a"))
        net.add_node(Node(net.sim, net.trace, "b"))
        link = net.add_link("a", "b")
        assert link.connects(net.get("a"), net.get("b"))

    def test_link_between(self, net):
        nodes, links = build_line(net, 3)
        assert net.link_between("n1", "n2") is links[0]
        assert net.link_between("n1", "n3") is None

    def test_nodes_of_type(self, net):
        build_line(net, 2)
        assert len(net.nodes_of_type(Node)) == 2


class TestTracePath:
    def test_reaches_destination(self, net):
        nodes, _ = build_line(net, 4)
        result = net.trace_path(nodes[0], nodes[3].address)
        assert result.reached
        assert result.hops == ["n1", "n2", "n3", "n4"]

    def test_trace_path_is_instant(self, net):
        nodes, _ = build_line(net, 4)
        net.trace_path(nodes[0], nodes[3].address)
        assert net.sim.now == 0.0

    def test_no_route_fails_with_reason(self, net):
        nodes, _ = build_line(net, 2)
        result = net.trace_path(nodes[0], IPv4Address.parse("203.0.113.1"))
        assert not result.reached
        assert "no route" in result.reason

    def test_down_link_fails(self, net):
        nodes, links = build_line(net, 3)
        links[1].up = False
        result = net.trace_path(nodes[0], nodes[2].address)
        assert not result.reached
        assert "link down" in result.reason

    def test_loop_detected(self, net):
        a = net.add_node(Node(net.sim, net.trace, "a"))
        b = net.add_node(Node(net.sim, net.trace, "b"))
        link = net.add_link(a, b)
        dest = Prefix.parse("10.9.0.0/16")
        a.fib.install(FibEntry(dest, link, via="b"))
        b.fib.install(FibEntry(dest, link, via="a"))
        result = net.trace_path(a, IPv4Address.parse("10.9.0.1"))
        assert not result.reached
        assert "loop" in result.reason

    def test_bool_conversion(self, net):
        nodes, _ = build_line(net, 2)
        assert net.trace_path(nodes[0], nodes[1].address)


class TestAllPairs:
    def test_full_matrix(self, net):
        nodes, _ = build_line(net, 3)
        matrix = net.all_pairs_reachable()
        assert len(matrix) == 6
        assert all(t.reached for t in matrix.values())

    def test_unaddressed_nodes_skipped(self, net):
        nodes, _ = build_line(net, 2)
        net.add_node(Node(net.sim, net.trace, "unaddressed"))
        matrix = net.all_pairs_reachable()
        assert len(matrix) == 2


class TestGraphExport:
    def test_to_graph_has_phys_links(self, net):
        nodes, _ = build_line(net, 3)
        graph = net.to_graph()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2

    def test_down_links_excluded_by_default(self, net):
        nodes, links = build_line(net, 3)
        links[0].up = False
        assert net.to_graph().number_of_edges() == 1
        assert net.to_graph(include_down=True).number_of_edges() == 2

    def test_kind_filter(self, net):
        nodes, _ = build_line(net, 2)
        net.add_node(Node(net.sim, net.trace, "c"))
        net.add_link("n1", "c", kind="control")
        assert net.to_graph().number_of_edges() == 1
        assert net.to_graph(kinds=("phys", "control")).number_of_edges() == 2
