"""Unit tests for node forwarding, local delivery, ping, hosts."""

from repro.net.addr import IPv4Address, Prefix
from repro.net.dataplane import FibEntry
from repro.net.messages import Packet, PING_PROTO, PROBE_PROTO
from repro.net.node import Host, Node


def addr(text):
    return IPv4Address.parse(text)


def make_chain(net, n=3):
    """a line of nodes n1 - n2 - ... with addresses 10.0.i.1."""
    nodes = [net.add_node(Node(net.sim, net.trace, f"n{i}")) for i in range(1, n + 1)]
    for i, node in enumerate(nodes):
        node.address = addr(f"10.0.{i + 1}.1")
        node.add_local_prefix(Prefix.parse(f"10.0.{i + 1}.0/24"))
    links = [
        net.add_link(nodes[i], nodes[i + 1], latency=0.01)
        for i in range(n - 1)
    ]
    # static routes along the chain, both directions
    for i, node in enumerate(nodes):
        for j in range(n):
            if j == i:
                continue
            out = links[i] if j > i else links[i - 1]
            node.fib.install(
                FibEntry(Prefix.parse(f"10.0.{j + 1}.0/24"), out, via="next")
            )
    return nodes, links


class TestForwarding:
    def test_multi_hop_delivery_and_hops(self, net):
        nodes, _ = make_chain(net, 3)
        packet = Packet(src=nodes[0].address, dst=nodes[2].address, proto="raw")
        nodes[0].send_packet(packet)
        net.sim.run()
        assert packet.hops == ["n1", "n2", "n3"]

    def test_ttl_decrements_per_hop(self, net):
        nodes, _ = make_chain(net, 3)
        packet = Packet(src=nodes[0].address, dst=nodes[2].address, ttl=64, proto="raw")
        nodes[0].send_packet(packet)
        net.sim.run()
        assert packet.ttl == 62

    def test_ttl_expiry_drops(self, net):
        nodes, _ = make_chain(net, 3)
        packet = Packet(src=nodes[0].address, dst=nodes[2].address, ttl=1, proto="raw")
        nodes[0].send_packet(packet)
        net.sim.run()
        assert nodes[1].packets_dropped == 1
        drops = net.trace.filter(category="packet.drop")
        assert drops and drops[0].data["reason"] == "ttl_expired"

    def test_no_route_drops(self, net):
        node = net.add_node(Node(net.sim, net.trace, "lone"))
        node.address = addr("10.0.1.1")
        packet = Packet(src=node.address, dst=addr("203.0.113.1"), proto="raw")
        node.send_packet(packet)
        assert node.packets_dropped == 1

    def test_down_link_drops(self, net):
        nodes, links = make_chain(net, 2)
        links[0].up = False  # silently down (no notification)
        packet = Packet(src=nodes[0].address, dst=nodes[1].address, proto="raw")
        nodes[0].send_packet(packet)
        assert nodes[0].packets_dropped == 1

    def test_forward_counter(self, net):
        nodes, _ = make_chain(net, 3)
        nodes[0].send_packet(
            Packet(src=nodes[0].address, dst=nodes[2].address, proto="raw")
        )
        net.sim.run()
        assert nodes[0].packets_forwarded == 1
        assert nodes[1].packets_forwarded == 1


class TestLocalDelivery:
    def test_own_address_delivers_locally(self, net):
        nodes, _ = make_chain(net, 2)
        got = []
        nodes[1].handle_local_packet = lambda link, p: got.append(p)
        nodes[0].send_packet(
            Packet(src=nodes[0].address, dst=nodes[1].address, proto="raw")
        )
        net.sim.run()
        assert len(got) == 1

    def test_more_specific_route_beats_owned_prefix(self, net):
        """An owned /24 must not swallow traffic for an attached /32."""
        a = net.add_node(Node(net.sim, net.trace, "a"))
        h = net.add_node(Node(net.sim, net.trace, "h"))
        a.address = addr("10.0.1.1")
        a.add_local_prefix(Prefix.parse("10.0.1.0/24"))
        h.address = addr("10.0.1.50")
        stub = net.add_link(a, h)
        a.fib.install(FibEntry(Prefix.parse("10.0.1.50/32"), stub, via="h"))
        got = []
        h.handle_local_packet = lambda link, p: got.append(p)
        packet = Packet(src=addr("10.0.1.1"), dst=addr("10.0.1.50"), proto="raw")
        a.send_packet(packet)
        net.sim.run()
        assert len(got) == 1

    def test_local_fib_entry_delivers(self, net):
        node = net.add_node(Node(net.sim, net.trace, "n"))
        node.address = addr("10.0.0.1")
        node.fib.install(FibEntry(Prefix.parse("10.9.0.0/16"), None, via="local"))
        got = []
        node.handle_local_packet = lambda link, p: got.append(p)
        node.send_packet(Packet(src=node.address, dst=addr("10.9.1.1"), proto="raw"))
        assert len(got) == 1


class TestPing:
    def test_ping_reply_roundtrip(self, net):
        nodes, _ = make_chain(net, 3)
        ping = Packet(
            src=nodes[0].address, dst=nodes[2].address,
            proto=PING_PROTO, seq=7,
        )
        nodes[0].send_packet(ping)
        net.sim.run()
        assert 7 in nodes[0].echo_replies_received
        # 2 hops each way at 0.01s
        assert abs(nodes[0].echo_replies_received[7] - 0.04) < 1e-9

    def test_ping_to_self(self, net):
        node = net.add_node(Node(net.sim, net.trace, "n"))
        node.address = addr("10.0.0.1")
        node.send_packet(
            Packet(src=node.address, dst=node.address, proto=PING_PROTO, seq=1)
        )
        net.sim.run()
        assert 1 in node.echo_replies_received


class TestHost:
    def test_host_counts_probes(self, net):
        nodes, _ = make_chain(net, 2)
        host = net.add_node(Host(net.sim, net.trace, "h"))
        host.address = addr("10.0.2.99")
        link = net.add_link(nodes[1], host)
        nodes[1].fib.install(
            FibEntry(Prefix.parse("10.0.2.99/32"), link, via="h")
        )
        nodes[0].send_packet(
            Packet(src=nodes[0].address, dst=host.address, proto=PROBE_PROTO, seq=3)
        )
        net.sim.run()
        assert [p.seq for p in host.probes_received] == [3]

    def test_host_still_answers_ping(self, net):
        host = net.add_node(Host(net.sim, net.trace, "h"))
        host.address = addr("10.0.0.5")
        host.send_packet(
            Packet(src=host.address, dst=host.address, proto=PING_PROTO, seq=2)
        )
        net.sim.run()
        assert 2 in host.echo_replies_received

    def test_neighbors_and_link_to(self, net):
        nodes, links = make_chain(net, 3)
        assert set(n.name for n in nodes[1].neighbors()) == {"n1", "n3"}
        assert nodes[0].link_to(nodes[1]) is links[0]
        assert nodes[0].link_to(nodes[2]) is None
