"""Convergence-anatomy acceptance tests.

The central claim: for every AS, the critical-path delay attribution is
an *exact* decomposition — the fixed-order category sum equals the AS's
convergence instant minus the event time, bit for bit, against the
streaming :class:`ConvergenceTracker`'s answers — on the paper's 16-AS
clique, pure BGP and hybrid alike.  Everything else (reports,
aggregation, record plumbing) is built on that invariant.
"""

import json
import math

import pytest

from repro.experiments.common import (
    WithdrawalScenario,
    paper_config,
    run_scenario_full,
    sdn_set_for,
)
from repro.obs import ProvenanceDAG
from repro.obs.anatomy import (
    ANATOMY_CATEGORIES,
    aggregate_anatomy,
    anatomize,
    anatomy_json,
    anatomy_markdown,
    anatomy_payload,
    anatomy_report,
    check_anatomy,
    critical_spans,
)
from repro.topology.builders import clique


def traced_withdrawal(n, sdn_count, *, seed=3, mrai=30.0):
    scenario = WithdrawalScenario()
    topology = scenario.topology(n, clique)
    members = sdn_set_for(topology, sdn_count, scenario.reserved_legacy)
    config = paper_config(seed=seed, mrai=mrai, spans=True)
    return run_scenario_full(scenario, topology, members, config)


class TestSixteenAsCliqueExactness:
    @pytest.fixture(scope="class", params=[0, 8], ids=["pure-bgp", "hybrid"])
    def run(self, request):
        measurement, _, spans = traced_withdrawal(16, request.param)
        dag = ProvenanceDAG.from_dicts(spans)
        root = measurement.extra["event_root_span"]
        return measurement, dag, anatomize(dag, root), request.param

    def test_exact_sum_per_as(self, run):
        measurement, dag, anatomy, _ = run
        assert anatomy.nodes
        for name, node in anatomy.nodes.items():
            total = 0.0
            for category in ANATOMY_CATEGORIES:
                total += node.categories[category]
            # bit-exact, not approximately: the fixed-order float sum
            # reproduces the measured duration with zero error
            assert total == node.total, name
            assert node.total == node.instant - anatomy.t_event, name

    def test_instants_match_tracker_exactly(self, run):
        measurement, dag, anatomy, _ = run
        root = anatomy.root_id
        instants = dag.per_node_instants(root)
        assert {
            name: node.instant for name, node in anatomy.nodes.items()
        } == instants
        assert anatomy.t_converged == measurement.t_converged
        critical = anatomy.critical
        assert critical is not None
        assert critical.instant == measurement.t_converged

    def test_check_anatomy_passes(self, run):
        measurement, _, anatomy, _ = run
        assert check_anatomy(
            anatomy.to_dict(), t_converged=measurement.t_converged
        ) == []

    def test_debounce_only_in_hybrid(self, run):
        _, _, anatomy, sdn_count = run
        debounce = sum(
            node.categories["debounce_wait"]
            for node in anatomy.nodes.values()
        )
        if sdn_count == 0:
            assert debounce == 0.0
        else:
            assert debounce > 0.0

    def test_mrai_dominates_pure_bgp(self, run):
        # the paper's mechanism: with MRAI 30s the wait dwarfs
        # propagation and processing on the critical path
        _, _, anatomy, sdn_count = run
        if sdn_count != 0:
            pytest.skip("pure-BGP only")
        categories = anatomy.categories
        assert categories["mrai_wait"] > categories["propagation"]
        assert categories["mrai_wait"] > categories["processing"]

    def test_critical_spans_are_route_affecting_maxima(self, run):
        _, dag, anatomy, _ = run
        spans = critical_spans(dag, anatomy.root_id)
        for name, span in spans.items():
            assert span.node == name
            assert span.t_end == anatomy.nodes[name].instant

    def test_waterfall_steps_cover_total(self, run):
        # the per-step amounts are the named categories re-listed in
        # causal order; their sum matches the total up to float
        # reassociation (the bit-exact guarantee lives on the
        # fixed-order category sum, where queueing closes the books)
        _, _, anatomy, _ = run
        for name, node in anatomy.nodes.items():
            total = 0.0
            for _, _, _, _, _, amount in node.steps:
                total += amount
            assert total == pytest.approx(node.total, rel=1e-9), name


class TestReportsAndPayloads:
    @pytest.fixture(scope="class")
    def anatomy(self):
        measurement, _, spans = traced_withdrawal(8, 3, seed=1, mrai=2.0)
        dag = ProvenanceDAG.from_dicts(spans)
        return anatomize(dag, measurement.extra["event_root_span"])

    def test_report_names_critical_as(self, anatomy):
        text = anatomy_report(anatomy)
        assert "Convergence anatomy" in text
        assert anatomy.critical_node in text
        assert "critical path of" in text

    def test_report_expands_requested_node(self, anatomy):
        some = sorted(anatomy.nodes)[0]
        text = anatomy_report(anatomy, node=some)
        assert f"critical path of {some}" in text

    def test_markdown_has_category_columns(self, anatomy):
        text = anatomy_markdown(anatomy)
        for category in ANATOMY_CATEGORIES:
            assert category in text

    def test_json_round_trips(self, anatomy):
        payload = json.loads(anatomy_json(anatomy))
        assert payload["critical_node"] == anatomy.critical_node
        assert check_anatomy(payload) == []

    def test_payload_skips_unknown_root(self, anatomy):
        assert anatomy_payload([], None) is None
        assert anatomy_payload([], 10**9) is None

    def test_to_dict_is_compact(self, anatomy):
        payload = anatomy.to_dict()
        for node in payload["nodes"].values():
            assert "steps" not in node


class TestAggregation:
    def test_aggregate_medians(self):
        payloads = []
        for seed in (1, 2, 3):
            measurement, _, spans = traced_withdrawal(
                6, 2, seed=seed, mrai=2.0
            )
            payloads.append(
                anatomy_payload(
                    spans, measurement.extra["event_root_span"]
                )
            )
        agg = aggregate_anatomy(payloads)
        assert agg["runs"] == 3
        for category in ANATOMY_CATEGORIES:
            assert category in agg["categories"]
            assert math.isfinite(agg["categories"][category])
        assert agg["total"] >= agg["categories"]["mrai_wait"]

    def test_aggregate_ignores_missing(self):
        assert aggregate_anatomy([None, None]) is None
        measurement, _, spans = traced_withdrawal(6, 0, seed=1, mrai=2.0)
        payload = anatomy_payload(
            spans, measurement.extra["event_root_span"]
        )
        agg = aggregate_anatomy([None, payload, None])
        assert agg["runs"] == 1


class TestCheckAnatomyRejectsCorruption:
    @pytest.fixture()
    def payload(self):
        measurement, _, spans = traced_withdrawal(6, 0, seed=1, mrai=2.0)
        return anatomy_payload(
            spans, measurement.extra["event_root_span"]
        ), measurement

    def test_detects_tampered_category(self, payload):
        payload, _ = payload
        name = next(iter(sorted(payload["nodes"])))
        payload["nodes"][name]["categories"]["mrai_wait"] += 0.25
        assert check_anatomy(payload) != []

    def test_detects_wrong_t_converged(self, payload):
        payload, measurement = payload
        assert check_anatomy(
            payload, t_converged=measurement.t_converged + 1.0
        ) != []
