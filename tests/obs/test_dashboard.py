"""Dashboard rendering: structure checks plus one pinned golden page.

The golden test records a fixed-seed fig2-style grid twice (wall times
pinned, clock/git/version injected) and pins the exact HTML.  The
measurement numbers inside are real simulator output — virtual-time
deterministic, identical on any machine.  Regenerate after intentional
changes with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_dashboard.py
"""

import dataclasses
import os
import pathlib

import pytest

from repro.obs.dashboard import render_dashboard
from repro.runner import execute_spec
from repro.runner.progress import SweepTiming

from ..runner.test_jobs import make_spec
from .test_registry import make_registry

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def check_golden(name: str, text: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
    if not path.exists():
        pytest.fail(
            f"golden file {path} missing — regenerate with "
            "REPRO_REGEN_GOLDEN=1"
        )
    assert text == path.read_text(), (
        f"{name} drifted from its golden copy; if the change is "
        "intentional, regenerate with REPRO_REGEN_GOLDEN=1 and commit"
    )


#: fig2-style grid on a 4-AS clique: (sdn_count, seed) per trial.
GRID = [(0, 100), (0, 101), (2, 2100), (2, 2101), (3, 3100), (3, 3101)]


def pinned_resources(i: int, wall: float) -> dict:
    """Machine-independent stand-in for ResourceAccounting output."""
    return {
        "gc_collections": 2 + i,
        "gc_pause_s": 0.0012,
        "cpu_user_s": round(wall * 0.9, 6),
        "cpu_sys_s": 0.002,
        "max_rss_kb": 51200 + 16 * i,
        "events_processed": 2000 + i,
        "events_per_s": 27000.5,
    }


#: pinned collapsed stacks exercising the dashboard Ops section.
PINNED_STACKS = {
    "repro.runner.jobs.run_trial_full;repro.framework.experiment.run": 7,
    "repro.runner.jobs.run_trial_full;repro.eventsim.core.run": 3,
}


def record_pinned_sweep(registry, *, wall_base: float) -> int:
    """One recorded sweep of GRID with machine-independent wall times."""
    sweep_id = registry.begin_sweep(scenario="WithdrawalScenario", n_ases=4)
    walls = []
    for i, (sdn_count, seed) in enumerate(GRID):
        spec = make_spec(sdn_count=sdn_count, seed=seed)
        record = execute_spec(spec)
        wall = round(wall_base + 0.01 * i, 6)
        walls.append(wall)
        registry.record(
            spec,
            dataclasses.replace(
                record, wall_time=wall, worker="w0",
                resources=pinned_resources(i, wall),
                sample_stacks=dict(PINNED_STACKS),
            ),
            sweep_id=sweep_id,
        )
    registry.finish_sweep(
        sweep_id,
        SweepTiming(
            elapsed=round(sum(walls) * 0.6, 6), jobs=len(GRID), cached=0,
            failed=0, total_job_wall=round(sum(walls), 6),
            max_job_wall=max(walls), workers=2,
            cache_hits=0, cache_misses=len(GRID),
        ),
    )
    return sweep_id


@pytest.fixture(scope="module")
def recorded():
    registry = make_registry()
    record_pinned_sweep(registry, wall_base=0.05)
    record_pinned_sweep(registry, wall_base=0.06)
    return registry


class TestDashboardStructure:
    def test_self_contained_html(self, recorded):
        html = render_dashboard(recorded)
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</html>")
        # no external assets: everything inline (the only URL is the
        # SVG xmlns namespace, which browsers never fetch)
        assert "<script" not in html
        assert "<link" not in html
        assert 'src="http' not in html and 'href="http' not in html

    def test_sections_present(self, recorded):
        html = render_dashboard(recorded)
        assert "Convergence vs SDN fraction — WithdrawalScenario" in html
        assert "Metrics trends across sweeps" in html
        assert "Wall-time breakdown per sweep" in html
        assert "Regression gate" in html
        assert "No regressions detected" in html
        assert "<svg" in html

    def test_empty_registry_renders(self):
        html = render_dashboard(make_registry())
        assert html.startswith("<!DOCTYPE html>")
        assert "Regression gate" in html

    def test_injected_provenance_shown(self, recorded):
        html = render_dashboard(recorded)
        assert "deadbee" in html
        assert "generated 2026-01-01T00:00:00Z" in html

    def test_ops_section_present(self, recorded):
        html = render_dashboard(recorded)
        assert "Ops — per-run resource accounting" in html
        assert "Ops — hot frames" in html
        assert "repro.framework.experiment.run" in html


class TestAnatomySection:
    @pytest.fixture(scope="class")
    def traced(self):
        """A sweep whose runs carry spans, so the registry derives and
        stores the anatomy column for every trial."""
        registry = make_registry()
        sweep_id = registry.begin_sweep(
            scenario="WithdrawalScenario", n_ases=4
        )
        for sdn_count, seed in GRID:
            spec = make_spec(sdn_count=sdn_count, seed=seed, spans=True)
            record = execute_spec(spec)
            registry.record(
                spec,
                dataclasses.replace(record, wall_time=0.05, worker="w0"),
                sweep_id=sweep_id,
            )
        registry.finish_sweep(
            sweep_id,
            SweepTiming(
                elapsed=0.3, jobs=len(GRID), cached=0, failed=0,
                total_job_wall=0.3, max_job_wall=0.05, workers=1,
                cache_hits=0, cache_misses=len(GRID),
            ),
        )
        return registry

    def test_anatomy_chart_rendered(self, traced):
        html = render_dashboard(traced)
        assert (
            "Convergence anatomy vs SDN fraction — WithdrawalScenario"
            in html
        )
        assert "median critical-path delay by category" in html
        assert "mrai_wait" in html

    def test_no_anatomy_no_section(self, recorded):
        # the pinned fixture records span-free runs: no attribution,
        # and the section stays out instead of rendering empty axes
        html = render_dashboard(recorded)
        assert "Convergence anatomy vs SDN fraction" not in html


class TestOpsEmptyState:
    def test_pre_schema2_rows_explained(self):
        # runs exist but none carry resources/sample_stacks (the shape
        # of a migrated pre-schema-2 registry): the Ops section says so
        # instead of vanishing
        registry = make_registry()
        spec = make_spec()
        record = execute_spec(spec)
        registry.record(
            spec,
            dataclasses.replace(
                record, resources=None, sample_stacks=None
            ),
        )
        html = render_dashboard(registry)
        assert "Ops — per-run resource accounting" in html
        assert "No resource accounting recorded" in html
        assert "recorded before schema 2" in html

    def test_empty_registry_omits_ops(self):
        html = render_dashboard(make_registry())
        assert "Ops — per-run resource accounting" not in html


class TestDashboardGolden:
    def test_pinned_page(self, recorded):
        check_golden("dashboard.html", render_dashboard(recorded))
