"""Exporter tests: Chrome trace-event schema and JSONL roundtrip."""

import json

import pytest

from repro.obs import (
    Span,
    chrome_trace_json,
    spans_from_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
)


@pytest.fixture
def spans():
    return [
        Span(1, None, 1, "bgp.withdraw", "as1", 10.0, 10.0,
             {"prefix": "10.0.0.0/24"}),
        Span(2, 1, 1, "bgp.update.tx", "as1", 10.0, 12.5,
             {"mrai_wait": 2.5}),
        Span(3, 2, 1, "bgp.update.rx", "as2", 12.51, 12.51, {}),
    ]


class TestChromeTrace:
    def test_valid_trace_event_json(self, spans):
        trace = json.loads(chrome_trace_json(spans))
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert event["ph"] in {"M", "X", "s", "f"}
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] != "M":
                assert isinstance(event["ts"], int)
            if event["ph"] == "X":
                assert isinstance(event["dur"], int) and event["dur"] >= 1

    def test_one_complete_event_per_span(self, spans):
        events = to_chrome_trace(spans)["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(spans)
        assert {e["args"]["span_id"] for e in complete} == {1, 2, 3}

    def test_thread_metadata_per_node(self, spans):
        events = to_chrome_trace(spans)["traceEvents"]
        names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"as1", "as2"}

    def test_flow_events_trace_causal_edges(self, spans):
        events = to_chrome_trace(spans)["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        # spans 2 and 3 each have a parent -> one s/f pair each
        assert len(starts) == len(finishes) == 2
        assert {e["id"] for e in starts} == {2, 3}

    def test_microsecond_scaling(self, spans):
        events = to_chrome_trace(spans)["traceEvents"]
        tx = next(
            e for e in events
            if e["ph"] == "X" and e["args"]["span_id"] == 2
        )
        assert tx["ts"] == 10_000_000
        assert tx["dur"] == 2_500_000

    def test_accepts_dict_form(self, spans):
        as_dicts = [s.to_dict() for s in spans]
        assert to_chrome_trace(as_dicts) == to_chrome_trace(spans)


class TestJsonl:
    def test_roundtrip(self, spans):
        text = spans_to_jsonl(spans)
        assert text.endswith("\n")
        assert spans_from_jsonl(text) == spans

    def test_one_object_per_line(self, spans):
        lines = spans_to_jsonl(spans).strip().splitlines()
        assert len(lines) == len(spans)
        for line in lines:
            json.loads(line)

    def test_empty(self):
        assert spans_to_jsonl([]) == ""
        assert spans_from_jsonl("") == []
