"""Structured logging: JSON schema, correlation ids, env configuration."""

import io
import json

import pytest

from repro.obs import logging as obslog
from repro.obs.logging import (
    LOG_ENV,
    NULL_LOGGER,
    StructuredLogger,
    format_ts,
    get_logger,
    log_enabled,
    new_cid,
)


@pytest.fixture(autouse=True)
def reset_logging_state(monkeypatch):
    """Each test starts unconfigured and leaves no module state behind."""
    monkeypatch.delenv(LOG_ENV, raising=False)
    obslog._configured = False
    obslog._root = None
    yield
    obslog._configured = False
    obslog._root = None


def lines(stream: io.StringIO):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestStructuredLogger:
    def test_event_line_schema(self):
        stream = io.StringIO()
        logger = StructuredLogger(
            stream, component="runner", clock=lambda: 1700000000.0
        )
        logger.info("sweep_started", jobs=4, workers=2)
        (entry,) = lines(stream)
        assert entry == {
            "ts": "2023-11-14T22:13:20.000Z",
            "level": "info",
            "component": "runner",
            "event": "sweep_started",
            "jobs": 4,
            "workers": 2,
        }

    def test_fields_sorted_and_compact(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream, clock=lambda: 0.0)
        logger.log("e", zebra=1, alpha=2)
        raw = stream.getvalue()
        assert raw.index('"alpha"') < raw.index('"zebra"')
        assert ": " not in raw.split("\n")[0]  # compact separators

    def test_none_fields_dropped(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream, clock=lambda: 0.0)
        logger.info("e", cid=None, kept=0)
        (entry,) = lines(stream)
        assert "cid" not in entry and entry["kept"] == 0

    def test_bind_shares_stream_and_adds_fields(self):
        stream = io.StringIO()
        root = StructuredLogger(stream, clock=lambda: 0.0)
        child = root.bind(component="worker", cid="abc123")
        child.warning("job_failed", index=3)
        (entry,) = lines(stream)
        assert entry["component"] == "worker"
        assert entry["cid"] == "abc123"
        assert entry["level"] == "warning"

    def test_unserializable_values_stringified(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream, clock=lambda: 0.0)
        logger.info("e", obj=object())
        (entry,) = lines(stream)
        assert entry["obj"].startswith("<object object")

    def test_write_errors_swallowed(self):
        class Broken:
            def write(self, text):
                raise OSError("disk full")

            def flush(self):
                raise OSError("disk full")

        StructuredLogger(Broken(), clock=lambda: 0.0).info("e")


class TestCorrelationIds:
    def test_new_cid_shape(self):
        cid = new_cid()
        assert len(cid) == 12
        int(cid, 16)  # hex
        assert new_cid() != cid

    def test_format_ts_utc_millis(self):
        assert format_ts(0.0) == "1970-01-01T00:00:00.000Z"
        assert format_ts(1.5) == "1970-01-01T00:00:01.500Z"


class TestConfiguration:
    def test_disabled_by_default(self):
        assert not log_enabled()
        assert get_logger("x") is NULL_LOGGER

    def test_null_logger_is_inert(self):
        NULL_LOGGER.info("anything", field=1)
        assert NULL_LOGGER.bind(component="y", extra=2) is NULL_LOGGER

    def test_env_file_target(self, tmp_path, monkeypatch):
        path = tmp_path / "repro.log"
        monkeypatch.setenv(LOG_ENV, str(path))
        logger = get_logger("test-component")
        assert log_enabled()
        logger.info("hello", n=1)
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry["event"] == "hello"
        assert entry["component"] == "test-component"

    def test_env_stderr_target(self, monkeypatch, capsys):
        monkeypatch.setenv(LOG_ENV, "stderr")
        get_logger("c").info("to_stderr")
        assert "to_stderr" in capsys.readouterr().err

    def test_empty_env_disables(self, monkeypatch):
        monkeypatch.setenv(LOG_ENV, "")
        assert get_logger("c") is NULL_LOGGER
        assert not log_enabled()
