"""End-to-end provenance acceptance tests.

The central invariant: one span per route-affecting record, parented by
causal context, so the DAG's derived per-AS convergence instants equal
the streaming :class:`ConvergenceTracker`'s answers *exactly* — on the
paper's 16-AS clique, pure BGP and hybrid alike — while leaving every
measured result bit-identical to a span-free run.
"""

import pytest

from repro.experiments.common import (
    WithdrawalScenario,
    paper_config,
    run_scenario_full,
    sdn_set_for,
)
from repro.framework.convergence import STATE_CHANGING as FW_STATE_CHANGING
from repro.framework.convergence import measure_event
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.obs import STATE_CHANGING, ProvenanceDAG
from repro.topology.builders import clique


def traced_withdrawal(n, sdn_count, *, seed=3, mrai=30.0):
    scenario = WithdrawalScenario()
    topology = scenario.topology(n, clique)
    members = sdn_set_for(topology, sdn_count, scenario.reserved_legacy)
    config = paper_config(seed=seed, mrai=mrai, spans=True)
    return run_scenario_full(scenario, topology, members, config)


class TestStateChangingMirror:
    def test_local_set_matches_framework(self):
        # repro.obs keeps its own copy so it depends only on eventsim;
        # this pin means the two can never drift apart silently.
        assert STATE_CHANGING == frozenset(FW_STATE_CHANGING)


class TestSixteenAsCliqueAcceptance:
    @pytest.fixture(scope="class", params=[0, 4])
    def run(self, request):
        measurement, metrics, spans = traced_withdrawal(16, request.param)
        return measurement, spans

    def test_single_root_is_the_withdrawal(self, run):
        measurement, spans = run
        dag = ProvenanceDAG.from_dicts(spans)
        roots = dag.roots(since=measurement.t_event)
        assert len(roots) == 1
        assert roots[0].category == "bgp.withdraw"
        assert roots[0].span_id == measurement.extra["event_root_span"]

    def test_per_as_instants_match_tracker_exactly(self, run):
        measurement, spans = run
        dag = ProvenanceDAG.from_dicts(spans)
        root = measurement.extra["event_root_span"]
        assert dag.convergence_instant(root) == measurement.t_converged
        assert dag.state_instant(root) == measurement.t_state_converged
        instants = dag.per_node_instants(root)
        assert max(instants.values()) == measurement.t_converged

    def test_subtree_counts_match_measurement_counters(self, run):
        measurement, spans = run
        dag = ProvenanceDAG.from_dicts(spans)
        root = measurement.extra["event_root_span"]
        by_cat = {}
        for span in dag.subtree(root):
            by_cat[span.category] = by_cat.get(span.category, 0) + 1
        # State changes during the measured window are attributable to
        # the withdrawal alone.
        assert by_cat.get("bgp.decision", 0) == measurement.decision_changes
        assert by_cat.get("fib.change", 0) == measurement.fib_changes
        # The window's update counters additionally include trailing
        # MRAI-paced re-advertisements of the *prior* announcement that
        # fire just after injection; provenance separates those out.
        # Subtree + other-cause spans inside the window == window total.
        t0, t1 = measurement.t_event, measurement.t_settled
        in_tree = {s.span_id for s in dag.subtree(root)}
        for category, window_total in (
            ("bgp.update.tx", measurement.updates_tx),
            ("bgp.update.rx", measurement.updates_rx),
        ):
            in_window = [
                s for s in dag.spans
                if s.category == category and t0 <= s.t_end <= t1
            ]
            stray = [s for s in in_window if s.span_id not in in_tree]
            assert by_cat.get(category, 0) + len(stray) == window_total
            # every stray update belongs to an older cause, not ours
            assert all(s.cause_id < root for s in stray)

    def test_every_span_reaches_its_cause(self, run):
        _, spans = run
        dag = ProvenanceDAG.from_dicts(spans)
        for span in dag.spans:
            chain = dag.parent_chain(span.span_id)
            assert chain[-1].parent_id is None
            assert chain[-1].span_id == span.cause_id


class TestDeterminism:
    def test_results_bit_identical_with_spans_on_and_off(self):
        outcomes = []
        for spans_on in (True, False):
            topo = clique(8)
            exp = Experiment(
                topo, sdn_members={6, 7, 8},
                config=ExperimentConfig(seed=11, spans=spans_on),
            ).start()
            prefix = exp.as_prefix(3)
            m = measure_event(exp, lambda: exp.withdraw(3, prefix))
            outcomes.append(
                (
                    m.t_converged,
                    m.t_state_converged,
                    m.updates_tx,
                    m.updates_rx,
                    m.decision_changes,
                    m.fib_changes,
                    dict(exp.net.bus.counts),
                    exp.net.sim.events_processed,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_spans_reproducible_across_runs(self):
        def normalize(spans):
            # update_id is a process-global message counter (monotonic
            # across experiments in one interpreter); everything else
            # about the spans must reproduce exactly.
            out = []
            for span in spans:
                data = {
                    k: v for k, v in span["data"].items()
                    if k != "update_id"
                }
                out.append({**span, "data": data})
            return out

        a = traced_withdrawal(6, 2, seed=5, mrai=2.0)[2]
        b = traced_withdrawal(6, 2, seed=5, mrai=2.0)[2]
        assert normalize(a) == normalize(b)


class TestExplanatoryMetrics:
    @pytest.fixture(scope="class")
    def dag_and_measurement(self):
        measurement, _, spans = traced_withdrawal(8, 0, seed=2, mrai=5.0)
        return ProvenanceDAG.from_dicts(spans), measurement

    def test_path_exploration_depth_positive_for_withdrawal(
        self, dag_and_measurement
    ):
        dag, measurement = dag_and_measurement
        root = measurement.extra["event_root_span"]
        depth = dag.path_exploration_depth(root)
        # A clique withdrawal explores alternate paths before giving up.
        assert depth and max(depth.values()) > 1

    def test_mrai_wait_total_positive(self, dag_and_measurement):
        dag, measurement = dag_and_measurement
        root = measurement.extra["event_root_span"]
        assert dag.mrai_wait_total(root) > 0.0

    def test_summary_is_json_ready(self, dag_and_measurement):
        import json

        dag, measurement = dag_and_measurement
        root = measurement.extra["event_root_span"]
        text = json.dumps(dag.summary(root))
        assert "per_node_instants" in text

    def test_timeline_sorted_by_time(self, dag_and_measurement):
        dag, measurement = dag_and_measurement
        root = measurement.extra["event_root_span"]
        timeline = dag.timeline(root)
        keys = [(s.t_end, s.span_id) for s in timeline]
        assert keys == sorted(keys)


class TestMultiRootFaultSchedules:
    """Per-root explanatory metrics on overlapping measurement windows.

    A fault schedule firing a second fault while the first is still
    converging yields multiple root-cause spans whose causal trees
    interleave in time; ``mrai_wait_total`` and
    ``path_exploration_depth`` must stay per-tree quantities — summing
    only the root's own subtree — or overlapping windows would double
    count each other's waits.
    """

    @pytest.fixture(scope="class")
    def faulted(self):
        from repro.faults import FaultInjector, FaultSchedule

        topo = clique(6)
        members = sdn_set_for(topo, 0, frozenset({1, 2}))
        exp = Experiment(
            topo, sdn_members=members,
            config=paper_config(seed=1, mrai=20.0, spans=True),
        ).start()
        for asn in (1, 2):
            exp.announce(asn, exp.as_prefix(asn))
        exp.wait_converged()
        t_first = exp.net.sim.now + 1.0
        # second fault 2s later: well inside the first window (MRAI 20s
        # keeps the first event converging for tens of seconds)
        schedule = (
            FaultSchedule()
            .link_down(1, 3, at=1.0)
            .link_down(2, 4, at=3.0)
        )
        result = FaultInjector(exp, schedule).run()
        assert result.ok, result.violations
        dag = ProvenanceDAG.from_dicts(exp.spans_snapshot())
        roots = dag.roots(since=t_first)
        return exp, dag, roots, result

    def test_each_fault_opens_its_own_root(self, faulted):
        _, _, roots, _ = faulted
        assert len(roots) >= 2
        starts = sorted(r.t_start for r in roots)
        # the windows overlap: the second root fires before the first
        # tree's convergence (MRAI 20s >> the 2s stagger)
        assert starts[1] - starts[0] < 20.0

    def test_mrai_wait_total_is_per_tree(self, faulted):
        _, dag, roots, _ = faulted
        per_root = [dag.mrai_wait_total(r.span_id) for r in roots]
        assert all(w >= 0.0 for w in per_root)
        assert sum(per_root) > 0.0
        # each total sums only that root's subtree: recomputing by hand
        # over the subtree must agree exactly
        for root, expected in zip(roots, per_root):
            manual = sum(
                float(span.data.get("mrai_wait", 0.0))
                for span in dag.subtree(root.span_id)
                if span.category == "bgp.update.tx"
            )
            assert manual == expected
        # and the trees are disjoint: the union of subtree tx waits
        # equals the sum of the per-root totals
        seen = set()
        union = 0.0
        for root in roots:
            for span in dag.subtree(root.span_id):
                if (
                    span.category == "bgp.update.tx"
                    and span.span_id not in seen
                ):
                    seen.add(span.span_id)
                    union += float(span.data.get("mrai_wait", 0.0))
        assert union == pytest.approx(sum(per_root), rel=1e-12)

    def test_path_exploration_depth_per_root(self, faulted):
        _, dag, roots, _ = faulted
        for root in roots:
            depth = dag.path_exploration_depth(root.span_id)
            # every decision in this tree concerns a prefix the fault
            # disturbed; depths are positive counts
            assert all(d >= 1 for d in depth.values())
        # the two faults disturb different prefixes from different
        # origins, so at least one root explores a prefix the other
        # does not chart at the same depth profile
        profiles = [
            dag.path_exploration_depth(r.span_id) for r in roots
        ]
        assert profiles[0] != profiles[1]

    def test_anatomy_exact_on_every_root(self, faulted):
        from repro.obs.anatomy import anatomize, check_anatomy

        _, dag, roots, _ = faulted
        for root in roots:
            anatomy = anatomize(dag, root.span_id)
            if not anatomy.nodes:
                continue
            assert check_anatomy(anatomy.to_dict()) == []
            assert anatomy.t_converged == dag.convergence_instant(
                root.span_id
            )
