"""End-to-end provenance acceptance tests.

The central invariant: one span per route-affecting record, parented by
causal context, so the DAG's derived per-AS convergence instants equal
the streaming :class:`ConvergenceTracker`'s answers *exactly* — on the
paper's 16-AS clique, pure BGP and hybrid alike — while leaving every
measured result bit-identical to a span-free run.
"""

import pytest

from repro.experiments.common import (
    WithdrawalScenario,
    paper_config,
    run_scenario_full,
    sdn_set_for,
)
from repro.framework.convergence import STATE_CHANGING as FW_STATE_CHANGING
from repro.framework.convergence import measure_event
from repro.framework.experiment import Experiment, ExperimentConfig
from repro.obs import STATE_CHANGING, ProvenanceDAG
from repro.topology.builders import clique


def traced_withdrawal(n, sdn_count, *, seed=3, mrai=30.0):
    scenario = WithdrawalScenario()
    topology = scenario.topology(n, clique)
    members = sdn_set_for(topology, sdn_count, scenario.reserved_legacy)
    config = paper_config(seed=seed, mrai=mrai, spans=True)
    return run_scenario_full(scenario, topology, members, config)


class TestStateChangingMirror:
    def test_local_set_matches_framework(self):
        # repro.obs keeps its own copy so it depends only on eventsim;
        # this pin means the two can never drift apart silently.
        assert STATE_CHANGING == frozenset(FW_STATE_CHANGING)


class TestSixteenAsCliqueAcceptance:
    @pytest.fixture(scope="class", params=[0, 4])
    def run(self, request):
        measurement, metrics, spans = traced_withdrawal(16, request.param)
        return measurement, spans

    def test_single_root_is_the_withdrawal(self, run):
        measurement, spans = run
        dag = ProvenanceDAG.from_dicts(spans)
        roots = dag.roots(since=measurement.t_event)
        assert len(roots) == 1
        assert roots[0].category == "bgp.withdraw"
        assert roots[0].span_id == measurement.extra["event_root_span"]

    def test_per_as_instants_match_tracker_exactly(self, run):
        measurement, spans = run
        dag = ProvenanceDAG.from_dicts(spans)
        root = measurement.extra["event_root_span"]
        assert dag.convergence_instant(root) == measurement.t_converged
        assert dag.state_instant(root) == measurement.t_state_converged
        instants = dag.per_node_instants(root)
        assert max(instants.values()) == measurement.t_converged

    def test_subtree_counts_match_measurement_counters(self, run):
        measurement, spans = run
        dag = ProvenanceDAG.from_dicts(spans)
        root = measurement.extra["event_root_span"]
        by_cat = {}
        for span in dag.subtree(root):
            by_cat[span.category] = by_cat.get(span.category, 0) + 1
        # State changes during the measured window are attributable to
        # the withdrawal alone.
        assert by_cat.get("bgp.decision", 0) == measurement.decision_changes
        assert by_cat.get("fib.change", 0) == measurement.fib_changes
        # The window's update counters additionally include trailing
        # MRAI-paced re-advertisements of the *prior* announcement that
        # fire just after injection; provenance separates those out.
        # Subtree + other-cause spans inside the window == window total.
        t0, t1 = measurement.t_event, measurement.t_settled
        in_tree = {s.span_id for s in dag.subtree(root)}
        for category, window_total in (
            ("bgp.update.tx", measurement.updates_tx),
            ("bgp.update.rx", measurement.updates_rx),
        ):
            in_window = [
                s for s in dag.spans
                if s.category == category and t0 <= s.t_end <= t1
            ]
            stray = [s for s in in_window if s.span_id not in in_tree]
            assert by_cat.get(category, 0) + len(stray) == window_total
            # every stray update belongs to an older cause, not ours
            assert all(s.cause_id < root for s in stray)

    def test_every_span_reaches_its_cause(self, run):
        _, spans = run
        dag = ProvenanceDAG.from_dicts(spans)
        for span in dag.spans:
            chain = dag.parent_chain(span.span_id)
            assert chain[-1].parent_id is None
            assert chain[-1].span_id == span.cause_id


class TestDeterminism:
    def test_results_bit_identical_with_spans_on_and_off(self):
        outcomes = []
        for spans_on in (True, False):
            topo = clique(8)
            exp = Experiment(
                topo, sdn_members={6, 7, 8},
                config=ExperimentConfig(seed=11, spans=spans_on),
            ).start()
            prefix = exp.as_prefix(3)
            m = measure_event(exp, lambda: exp.withdraw(3, prefix))
            outcomes.append(
                (
                    m.t_converged,
                    m.t_state_converged,
                    m.updates_tx,
                    m.updates_rx,
                    m.decision_changes,
                    m.fib_changes,
                    dict(exp.net.bus.counts),
                    exp.net.sim.events_processed,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_spans_reproducible_across_runs(self):
        def normalize(spans):
            # update_id is a process-global message counter (monotonic
            # across experiments in one interpreter); everything else
            # about the spans must reproduce exactly.
            out = []
            for span in spans:
                data = {
                    k: v for k, v in span["data"].items()
                    if k != "update_id"
                }
                out.append({**span, "data": data})
            return out

        a = traced_withdrawal(6, 2, seed=5, mrai=2.0)[2]
        b = traced_withdrawal(6, 2, seed=5, mrai=2.0)[2]
        assert normalize(a) == normalize(b)


class TestExplanatoryMetrics:
    @pytest.fixture(scope="class")
    def dag_and_measurement(self):
        measurement, _, spans = traced_withdrawal(8, 0, seed=2, mrai=5.0)
        return ProvenanceDAG.from_dicts(spans), measurement

    def test_path_exploration_depth_positive_for_withdrawal(
        self, dag_and_measurement
    ):
        dag, measurement = dag_and_measurement
        root = measurement.extra["event_root_span"]
        depth = dag.path_exploration_depth(root)
        # A clique withdrawal explores alternate paths before giving up.
        assert depth and max(depth.values()) > 1

    def test_mrai_wait_total_positive(self, dag_and_measurement):
        dag, measurement = dag_and_measurement
        root = measurement.extra["event_root_span"]
        assert dag.mrai_wait_total(root) > 0.0

    def test_summary_is_json_ready(self, dag_and_measurement):
        import json

        dag, measurement = dag_and_measurement
        root = measurement.extra["event_root_span"]
        text = json.dumps(dag.summary(root))
        assert "per_node_instants" in text

    def test_timeline_sorted_by_time(self, dag_and_measurement):
        dag, measurement = dag_and_measurement
        root = measurement.extra["event_root_span"]
        timeline = dag.timeline(root)
        keys = [(s.t_end, s.span_id) for s in timeline]
        assert keys == sorted(keys)
