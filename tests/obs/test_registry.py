"""RunRegistry: recording, querying, gc, and the RegistrySink wiring."""

import dataclasses

import pytest

from repro.experiments.common import WithdrawalScenario, run_fraction_sweep
from repro.obs.registry import (
    REGISTRY_SCHEMA,
    RegistrySink,
    RunRegistry,
    aggregate_profiles,
    resolve_registry,
)
from repro.runner import ParallelRunner, execute_spec

from ..runner.test_jobs import make_spec


def make_registry(**overrides) -> RunRegistry:
    kwargs = dict(
        path=":memory:",
        git_rev="deadbee",
        code_version="test",
        clock=lambda: "2026-01-01T00:00:00Z",
    )
    kwargs.update(overrides)
    return RunRegistry(**kwargs)


class TestRecordAndQuery:
    def test_record_round_trips_the_measurement(self):
        registry = make_registry()
        spec = make_spec()
        record = execute_spec(spec)
        run_id = registry.record(spec, record)

        row = registry.run(run_id)
        assert row is not None
        assert row.spec_digest == spec.digest()
        assert row.scenario == "WithdrawalScenario"
        assert row.n == spec.n and row.sdn_count == spec.sdn_count
        assert row.seed == spec.seed
        assert row.fraction == pytest.approx(spec.sdn_count / spec.n)
        assert row.ok and row.error is None
        assert row.git_rev == "deadbee"
        assert row.code_version == "test"
        assert row.recorded_at == "2026-01-01T00:00:00Z"
        assert (
            row.measurement["t_converged"]
            == record.measurement.t_converged
        )
        assert row.measurement["updates_tx"] == record.measurement.updates_tx

    def test_failed_run_recorded_with_error(self):
        from repro.runner import RunRecord

        registry = make_registry()
        spec = make_spec()
        record = RunRecord(digest=spec.digest(), ok=False, error="boom")
        run_id = registry.record(spec, record)
        row = registry.run(run_id)
        assert not row.ok
        assert row.error == "boom"
        assert registry.counts()["failed"] == 1

    def test_metrics_snapshot_round_trips(self):
        registry = make_registry()
        spec = make_spec(metrics=True)
        record = execute_spec(spec)
        row = registry.run(registry.record(spec, record))
        assert row.metrics == record.metrics
        assert "counters" in row.metrics

    def test_spans_become_instants_not_blobs(self):
        registry = make_registry()
        spec = make_spec(spans=True)
        record = execute_spec(spec)
        row = registry.run(registry.record(spec, record))
        assert row.span_count == len(record.spans)
        # the span list itself is summarized, not stored
        assert row.instants, "per-AS convergence instants expected"
        assert all(isinstance(t, float) for t in row.instants.values())

    def test_runs_filtering(self):
        registry = make_registry()
        for seed in (7, 8):
            spec = make_spec(seed=seed)
            registry.record(spec, execute_spec(spec))
        digest = make_spec(seed=7).digest()
        assert [r.seed for r in registry.runs(digest=digest)] == [7]
        assert len(registry.runs(scenario="WithdrawalScenario")) == 2
        assert registry.runs(scenario="nope") == []
        newest = registry.runs(newest_first=True, limit=1)
        assert newest[0].seed == 8
        assert len(registry.digests()) == 2

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "reg.sqlite"
        registry = RunRegistry(path)
        registry._conn.execute(
            "UPDATE meta SET value='999' WHERE key='schema'"
        )
        registry._conn.commit()
        registry.close()
        with pytest.raises(ValueError, match="schema 999"):
            RunRegistry(path)
        assert REGISTRY_SCHEMA == 3

    def test_schema_1_migrates_in_place(self, tmp_path):
        """A version-1 file gains the schema-2 columns on open and its
        existing rows read back with the new fields as None."""
        import sqlite3

        path = tmp_path / "v1.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            INSERT INTO meta VALUES ('schema', '1');
            CREATE TABLE sweeps (
                sweep_id INTEGER PRIMARY KEY AUTOINCREMENT,
                recorded_at TEXT NOT NULL, scenario TEXT NOT NULL DEFAULT '',
                n_ases INTEGER, label TEXT NOT NULL DEFAULT '',
                git_rev TEXT NOT NULL DEFAULT '',
                code_version TEXT NOT NULL DEFAULT '', elapsed REAL,
                jobs INTEGER, cached INTEGER, failed INTEGER,
                total_job_wall REAL, max_job_wall REAL, workers INTEGER,
                cache_hits INTEGER, cache_misses INTEGER, extra TEXT);
            CREATE TABLE runs (
                run_id INTEGER PRIMARY KEY AUTOINCREMENT, sweep_id INTEGER,
                recorded_at TEXT NOT NULL, spec_digest TEXT NOT NULL,
                scenario TEXT NOT NULL DEFAULT '',
                label TEXT NOT NULL DEFAULT '', n INTEGER,
                sdn_count INTEGER, fraction REAL, seed INTEGER,
                git_rev TEXT NOT NULL DEFAULT '',
                code_version TEXT NOT NULL DEFAULT '',
                ok INTEGER NOT NULL, error TEXT,
                wall_time REAL NOT NULL DEFAULT 0.0,
                worker TEXT NOT NULL DEFAULT '',
                cached INTEGER NOT NULL DEFAULT 0,
                attempts INTEGER NOT NULL DEFAULT 1, measurement TEXT,
                metrics TEXT, instants TEXT, span_count INTEGER,
                fault_count INTEGER, profile TEXT);
            INSERT INTO runs (recorded_at, spec_digest, ok, wall_time,
                              measurement)
            VALUES ('2026-01-01T00:00:00Z', 'abc', 1, 0.5,
                    '{"t_converged": 1.0}');
            """
        )
        conn.commit()
        conn.close()

        with RunRegistry(path) as registry:
            row = registry.runs()[0]
            assert row.spec_digest == "abc"
            assert row.resources is None
            assert row.sample_stacks is None
            assert row.anatomy is None
            # and a current-schema record with resources now round-trips
            spec = make_spec(seed=99)
            record = execute_spec(spec)
            registry.record(spec, record)
            stored = registry.runs(digest=spec.digest())[0]
            assert stored.resources == record.resources
        with RunRegistry(path) as registry:  # reopen: migration is durable
            value = registry._conn.execute(
                "SELECT value FROM meta WHERE key='schema'"
            ).fetchone()["value"]
            assert value == str(REGISTRY_SCHEMA)

    def test_schema_2_migrates_in_place(self, tmp_path):
        """A version-2 file gains only the anatomy column; existing
        rows — including ones that already carry resources — survive
        untouched and read back with ``anatomy`` as None."""
        import sqlite3

        # author a real v2 file by rewinding a current one: drop the
        # anatomy column and stamp the old version
        path = tmp_path / "v2.sqlite"
        with RunRegistry(path) as registry:
            spec = make_spec(seed=41, spans=True)
            registry.record(spec, execute_spec(spec))
        conn = sqlite3.connect(path)
        conn.execute("ALTER TABLE runs DROP COLUMN anatomy")
        conn.execute("UPDATE meta SET value='2' WHERE key='schema'")
        conn.commit()
        conn.close()

        with RunRegistry(path) as registry:
            row = registry.runs()[0]
            assert row.anatomy is None
            assert row.resources is not None  # v2 data kept
            # new spans-carrying records gain the attribution
            spec = make_spec(seed=42, spans=True)
            registry.record(spec, execute_spec(spec))
            stored = registry.runs(digest=spec.digest())[0]
            assert stored.anatomy is not None
        with RunRegistry(path) as registry:
            value = registry._conn.execute(
                "SELECT value FROM meta WHERE key='schema'"
            ).fetchone()["value"]
            assert value == str(REGISTRY_SCHEMA)

    def test_anatomy_round_trips_and_checks(self):
        from repro.obs.anatomy import check_anatomy

        registry = make_registry()
        spec = make_spec(spans=True)
        record = execute_spec(spec)
        row = registry.run(registry.record(spec, record))
        # derived at record time from the spans, like the instants
        assert row.anatomy is not None
        assert check_anatomy(
            row.anatomy,
            t_converged=record.measurement.t_converged,
        ) == []
        # the stored critical instant is the tracker's answer
        assert row.anatomy["t_converged"] == record.measurement.t_converged

    def test_no_spans_no_anatomy(self):
        registry = make_registry()
        spec = make_spec()
        row = registry.run(registry.record(spec, execute_spec(spec)))
        assert row.anatomy is None

    def test_resolve_registry_shorthand(self, tmp_path):
        assert resolve_registry(None) is None
        registry = make_registry()
        assert resolve_registry(registry) is registry
        opened = resolve_registry(tmp_path / "r.sqlite")
        assert isinstance(opened, RunRegistry)
        opened.close()


class TestProfileStorage:
    def test_profile_round_trips(self):
        registry = make_registry()
        spec = make_spec(profile=True)
        record = execute_spec(spec)
        assert record.profile, "profiled run must carry a table"
        row = registry.run(registry.record(spec, record))
        assert row.profile == record.profile
        assert {"func", "ncalls", "tottime", "cumtime"} <= set(
            row.profile[0]
        )

    def test_profile_flag_changes_digest_but_default_does_not(self):
        assert make_spec().digest() != make_spec(profile=True).digest()
        # profile=False must not perturb pre-existing digests
        assert "profile" not in make_spec().describe()

    def test_aggregate_profiles_merges_by_function(self):
        merged = aggregate_profiles(
            [
                [{"func": "a.py:1(f)", "ncalls": 2, "tottime": 0.1,
                  "cumtime": 0.5}],
                None,
                [{"func": "a.py:1(f)", "ncalls": 3, "tottime": 0.2,
                  "cumtime": 0.25},
                 {"func": "b.py:2(g)", "ncalls": 1, "tottime": 0.0,
                  "cumtime": 0.1}],
            ]
        )
        assert merged[0]["func"] == "a.py:1(f)"
        assert merged[0]["ncalls"] == 5
        assert merged[0]["cumtime"] == pytest.approx(0.75)
        assert merged[1]["func"] == "b.py:2(g)"


class TestSinkWiring:
    def test_runner_records_every_trial(self):
        registry = make_registry()
        specs = [make_spec(seed=s) for s in (1, 2, 3)]
        ParallelRunner(1, registry=registry).run(specs)

        runs = registry.runs()
        assert [r.seed for r in runs] == [1, 2, 3]
        assert len({r.sweep_id for r in runs}) == 1
        sweep = registry.sweep(runs[0].sweep_id)
        assert sweep.scenario == "WithdrawalScenario"
        assert sweep.jobs == 3 and sweep.failed == 0
        assert sweep.elapsed is not None

    def test_serial_and_parallel_record_identically(self):
        serial, parallel = make_registry(), make_registry()
        specs = [make_spec(seed=s) for s in (11, 12)]
        ParallelRunner(1, registry=serial).run(specs)
        ParallelRunner(2, registry=parallel).run(specs)

        def deterministic(registry):
            # parallel trials record in completion order; sort by digest
            return sorted(
                (r.spec_digest, r.measurement["t_converged"],
                 r.measurement["updates_tx"])
                for r in registry.runs()
            )

        assert deterministic(serial) == deterministic(parallel)

    def test_cache_hits_recorded_with_provenance(self, tmp_path):
        registry = make_registry()
        kwargs = dict(n=4, sdn_counts=[0], runs=2, mrai=1.0)
        run_fraction_sweep(
            WithdrawalScenario, cache=str(tmp_path), **kwargs
        )
        result = run_fraction_sweep(
            WithdrawalScenario, cache=str(tmp_path), registry=registry,
            **kwargs,
        )
        assert result.timing.cached == 2
        runs = registry.runs()
        assert len(runs) == 2 and all(r.cached for r in runs)
        sweep = registry.sweep(runs[0].sweep_id)
        assert sweep.cache_hits == 2 and sweep.cache_misses == 0

    def test_sink_accepts_explicit_instance(self):
        registry = make_registry()
        sink = RegistrySink(registry, label="custom")
        ParallelRunner(1, registry=sink).run([make_spec()])
        assert len(sink.run_ids) == 1
        assert registry.sweeps()[0].label == "custom"


class TestGC:
    def _fill(self, registry, seeds):
        for seed in seeds:
            spec = make_spec(seed=seed)
            record = execute_spec(spec)
            sweep_id = registry.begin_sweep(scenario="WithdrawalScenario")
            registry.record(spec, record, sweep_id=sweep_id)

    def test_gc_keeps_newest_per_digest(self):
        registry = make_registry()
        spec = make_spec()
        record = execute_spec(spec)
        ids = [registry.record(spec, record) for _ in range(5)]
        deleted = registry.gc(keep_last=2)
        assert deleted == 3
        survivors = [r.run_id for r in registry.runs(digest=spec.digest())]
        assert survivors == ids[-2:]

    def test_gc_drop_failed_and_orphan_sweeps(self):
        from repro.runner import RunRecord

        registry = make_registry()
        spec = make_spec()
        sweep_id = registry.begin_sweep(scenario="WithdrawalScenario")
        registry.record(
            spec, RunRecord(digest=spec.digest(), ok=False, error="x"),
            sweep_id=sweep_id,
        )
        assert registry.gc(keep_last=10, drop_failed=True) == 1
        assert registry.counts()["runs"] == 0
        assert registry.sweeps() == []

    def test_gc_rejects_negative(self):
        with pytest.raises(ValueError):
            make_registry().gc(keep_last=-1)


class TestRunResultProfile:
    def test_sweep_surfaces_profile_tables(self):
        result = run_fraction_sweep(
            WithdrawalScenario, n=4, sdn_counts=[0], runs=1, mrai=1.0,
            profile=True,
        )
        (point,) = result.points
        (run,) = point.runs
        assert run.profile, "profile=True sweeps carry per-run tables"
        assert all("cumtime" in row for row in run.profile)

    def test_record_profile_survives_replace(self):
        # dashboards/tests pin wall time via dataclasses.replace; the
        # profile payload must ride along
        spec = make_spec(profile=True)
        record = execute_spec(spec)
        pinned = dataclasses.replace(record, wall_time=0.5)
        assert pinned.profile == record.profile
