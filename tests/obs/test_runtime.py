"""Prometheus exposition: rendering, parsing, and one pinned golden.

The golden test renders a hand-built snapshot byte-for-byte — the
exposition must be deterministic (sorted families, sorted labels,
stable number formatting) so CI can diff two scrapes of identical
state.  Regenerate after intentional format changes with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_runtime.py
"""

import math

import pytest

from repro.eventsim.metrics import MetricsRegistry
from repro.obs.runtime import (
    CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
)

from .test_dashboard import check_golden


def build_snapshot():
    """One registry exercising every metric kind and label edge case."""
    registry = MetricsRegistry()
    registry.counter("events.total", category="bgp.update").inc(41)
    registry.counter("events.total", category="timer").inc(7)
    registry.counter("plain").inc()
    registry.gauge("queue.depth").set(3)
    registry.gauge("temp", unit="C").set(-2.5)
    hist = registry.histogram("latency.seconds", route="/api/jobs")
    for value in (0.0005, 0.003, 0.003, 0.2, 150.0):
        hist.observe(value)
    # adversarial label values: escapes must round-trip
    registry.counter("tricky", label='a=1,b\\2}').inc(2)
    return registry.snapshot()


class TestRender:
    def test_content_type_pinned(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("events.total") == "events_total"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("ok_name:x") == "ok_name:x"

    def test_type_lines_and_prefix(self):
        text = render_prometheus(build_snapshot(), prefix="repro_")
        assert "# TYPE repro_events_total counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_latency_seconds histogram" in text
        assert text.endswith("\n")

    def test_histogram_is_cumulative_with_inf(self):
        text = render_prometheus(build_snapshot())
        scrape = parse_prometheus(text)

        def bucket(le):
            return scrape.value(
                "latency_seconds_bucket", le=le, route="/api/jobs"
            )

        # snapshot buckets are per-bound; the wire format is cumulative
        assert bucket("0.001") == 1
        assert bucket("0.01") == 3
        assert bucket("1") == 4
        count = scrape.value("latency_seconds_count", route="/api/jobs")
        assert bucket("+Inf") == count == 5
        assert scrape.value(
            "latency_seconds_sum", route="/api/jobs"
        ) == pytest.approx(150.2065)

    def test_deterministic_rendering(self):
        assert render_prometheus(build_snapshot()) == render_prometheus(
            build_snapshot()
        )


class TestParse:
    def test_round_trip_values(self):
        text = render_prometheus(build_snapshot(), prefix="repro_")
        scrape = parse_prometheus(text)
        assert scrape.value(
            "repro_events_total", category="bgp.update"
        ) == 41
        assert scrape.value("repro_plain") == 1
        assert scrape.value("repro_temp", unit="C") == -2.5
        assert scrape.types["repro_events_total"] == "counter"

    def test_escaped_label_round_trips(self):
        text = render_prometheus(build_snapshot())
        scrape = parse_prometheus(text)
        assert scrape.value("tricky", label='a=1,b\\2}') == 2

    def test_special_float_values(self):
        registry = MetricsRegistry()
        registry.gauge("weird").set(float("inf"))
        text = render_prometheus(registry.snapshot())
        scrape = parse_prometheus(text)
        assert math.isinf(scrape.value("weird"))

    def test_malformed_lines_rejected(self):
        for bad in (
            "no_value_here\n",
            'metric{unterminated="x\n',
            'm{a="x" b="y"} 1\n',
            "m1 notanumber\n",
        ):
            with pytest.raises(ValueError):
                parse_prometheus(bad)

    def test_duplicate_sample_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus("m 1\nm 2\n")

    def test_family_grouping(self):
        scrape = parse_prometheus(render_prometheus(build_snapshot()))
        family = scrape.family("events_total")
        assert len(family) == 2


class TestGolden:
    def test_pinned_exposition(self):
        check_golden(
            "metrics.prom", render_prometheus(build_snapshot(), prefix="repro_")
        )
