"""Sampling profiler: both capture modes, stack aggregation, rendering."""

import threading
import time

import pytest

from repro.obs.sampler import (
    DEFAULT_HZ,
    MAX_HZ,
    StackSampler,
    collapsed_text,
    merge_stacks,
    top_frames,
)


def spin(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i * i for i in range(200))


class TestCapture:
    def test_signal_mode_samples_main_thread(self):
        sampler = StackSampler(hz=300.0)
        with sampler:
            spin(0.25)
        assert sampler.samples > 0
        assert sampler.counts
        # leaf frames name this module's spin loop somewhere
        assert any("spin" in stack for stack in sampler.counts)

    def test_thread_mode_samples_worker_thread(self):
        counts = {}

        def work():
            sampler = StackSampler(hz=300.0)
            sampler.start()
            spin(0.25)
            counts.update(sampler.stop())

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert counts, "thread-mode sampler captured nothing"
        assert any("spin" in stack for stack in counts)

    def test_stop_is_idempotent_and_restores(self):
        sampler = StackSampler(hz=100.0)
        sampler.start()
        first = sampler.stop()
        assert sampler.stop() == first  # second stop is a no-op
        # a new sampler can start again afterwards
        with StackSampler(hz=100.0):
            spin(0.02)

    def test_hz_bounds(self):
        assert StackSampler().hz == DEFAULT_HZ
        assert StackSampler(hz=10_000.0).hz == MAX_HZ
        with pytest.raises(ValueError):
            StackSampler(hz=0.0)

    def test_stack_keys_are_collapsed_format(self):
        sampler = StackSampler(hz=300.0)
        with sampler:
            spin(0.15)
        for stack in sampler.counts:
            frames = stack.split(";")
            assert all("." in frame or frame == "..." for frame in frames)


class TestAggregation:
    def test_merge_stacks_adds_counts(self):
        merged = merge_stacks([
            {"a.f;b.g": 3, "a.f": 1},
            {"a.f;b.g": 2, "c.h": 5},
            None,
        ])
        assert merged == {"a.f;b.g": 5, "a.f": 1, "c.h": 5}

    def test_top_frames_ranks_by_leaf_self_samples(self):
        counts = {"a.f;b.g": 6, "c.h;b.g": 4, "a.f;d.k": 2}
        ranked = top_frames(counts, top=2)
        assert ranked[0] == ("b.g", 10, 10 / 12)
        assert ranked[1] == ("d.k", 2, 2 / 12)

    def test_top_frames_empty(self):
        assert top_frames({}) == []

    def test_collapsed_text_deterministic(self):
        counts = {"b.f": 2, "a.f": 2, "c.f": 9}
        text = collapsed_text(counts)
        assert text.splitlines() == ["c.f 9", "a.f 2", "b.f 2"]
