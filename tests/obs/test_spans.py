"""Unit tests for the span tracker and causal context plumbing."""

from repro.eventsim import InstrumentationBus, Simulator
from repro.obs import (
    SPAN_CATEGORIES,
    Span,
    SpanTracker,
    activation,
    last_span_activation,
)


def make_bus():
    sim = Simulator(seed=0)
    bus = InstrumentationBus(sim)
    obs = SpanTracker(sim)
    bus.obs = obs
    return sim, bus, obs


class TestAutoSpans:
    def test_route_affecting_record_becomes_span(self):
        sim, bus, obs = make_bus()
        bus.record("bgp.update.tx", "as1", prefix="10.0.0.0/24")
        assert len(obs.spans) == 1
        span = obs.spans[0]
        assert span.category == "bgp.update.tx"
        assert span.node == "as1"
        assert span.data["prefix"] == "10.0.0.0/24"

    def test_non_spanned_category_ignored(self):
        sim, bus, obs = make_bus()
        bus.record("link.quality", "as1")
        bus.record("speaker.session.up", "speaker")
        assert len(obs.spans) == 0
        # counters still see everything
        assert bus.counts["link.quality"] == 1

    def test_no_current_context_starts_root(self):
        sim, bus, obs = make_bus()
        bus.record("bgp.originate", "as1")
        span = obs.spans[0]
        assert span.parent_id is None
        assert span.cause_id == span.span_id

    def test_current_context_parents_span(self):
        sim, bus, obs = make_bus()
        bus.record("bgp.originate", "as1")
        root_ctx = obs.last_ctx
        prev = obs.swap(root_ctx)
        bus.record("bgp.decision", "as1")
        obs.swap(prev)
        child = obs.spans[1]
        assert child.parent_id == root_ctx[1]
        assert child.cause_id == root_ctx[0]

    def test_span_ids_monotonic_from_one(self):
        sim, bus, obs = make_bus()
        for _ in range(3):
            bus.record("bgp.decision", "as1")
        assert [s.span_id for s in obs.spans] == [1, 2, 3]

    def test_span_timestamps_are_sim_now(self):
        sim, bus, obs = make_bus()
        sim.schedule(2.5, lambda: bus.record("fib.change", "as1"))
        sim.run()
        assert obs.spans[0].t_start == 2.5
        assert obs.spans[0].t_end == 2.5


class TestExplicitSpans:
    def test_emit_root_ignores_current_context(self):
        sim, bus, obs = make_bus()
        bus.record("bgp.originate", "as1")
        obs.swap(obs.last_ctx)
        ctx = obs.emit_root("link.down", "l1", a="as1", b="as2")
        root = obs.spans[-1]
        assert root.parent_id is None
        assert root.cause_id == ctx[0] == root.span_id
        # current context is restored afterwards
        assert obs.current == (1, 1)

    def test_emit_inherits_current(self):
        sim, bus, obs = make_bus()
        root = obs.emit_root("bgp.crash", "as1")
        obs.swap(root)
        obs.emit("bgp.session.down", "as1")
        child = obs.spans[-1]
        assert child.parent_id == root[1]

    def test_annotate_last_adds_data_and_stretches_start(self):
        sim, bus, obs = make_bus()
        sim.schedule(5.0, lambda: bus.record("bgp.update.tx", "as1"))
        sim.run()
        obs.annotate_last(t_start=2.0, mrai_wait=3.0)
        span = obs.spans[-1]
        assert span.t_start == 2.0 and span.t_end == 5.0
        assert span.data["mrai_wait"] == 3.0

    def test_annotate_last_never_moves_start_later(self):
        sim, bus, obs = make_bus()
        bus.record("bgp.update.tx", "as1")
        obs.annotate_last(t_start=99.0)
        assert obs.spans[-1].t_start == 0.0


class TestActivation:
    def test_activation_swaps_and_restores(self):
        sim, bus, obs = make_bus()
        bus.record("bgp.originate", "as1")
        ctx = obs.last_ctx
        assert obs.current is None
        with activation(obs, ctx):
            assert obs.current == ctx
        assert obs.current is None

    def test_activation_with_no_tracker_is_noop(self):
        with activation(None, (1, 1)):
            pass  # must not raise

    def test_last_span_activation(self):
        sim, bus, obs = make_bus()
        bus.record("bgp.withdraw", "as1")
        with last_span_activation(obs):
            bus.record("bgp.decision", "as1")
        assert obs.spans[1].parent_id == obs.spans[0].span_id


class TestSnapshotAndClear:
    def test_snapshot_roundtrips_via_from_dict(self):
        sim, bus, obs = make_bus()
        bus.record("bgp.update.tx", "as1", prefix="10.0.0.0/24")
        dumped = obs.snapshot()
        restored = [Span.from_dict(d) for d in dumped]
        assert restored == obs.spans

    def test_clear_keeps_id_counter(self):
        sim, bus, obs = make_bus()
        bus.record("bgp.decision", "as1")
        obs.clear()
        assert len(obs) == 0 and obs.last_ctx is None
        bus.record("bgp.decision", "as1")
        assert obs.spans[0].span_id == 2  # ids never reused

    def test_span_categories_is_route_affecting(self):
        from repro.eventsim import ROUTE_AFFECTING

        assert SPAN_CATEGORIES == frozenset(ROUTE_AFFECTING)

    def test_detached_bus_has_zero_span_path(self):
        sim = Simulator(seed=0)
        bus = InstrumentationBus(sim)
        assert bus.obs is None
        bus.record("bgp.update.tx", "as1")  # must not raise
        assert bus.counts["bgp.update.tx"] == 1
