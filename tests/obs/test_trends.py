"""Run diffing, regression gating, and the report-text tolerance gate."""

import dataclasses

import pytest

from repro.obs.trends import (
    compare_report_dirs,
    compare_report_texts,
    detect_regressions,
    diff_runs,
    diff_sweeps,
    parse_number_token,
)
from repro.runner import ParallelRunner, execute_spec

from ..runner.test_jobs import make_spec
from .test_registry import make_registry


def record_twice(registry, spec, *, wall_times=(0.1, 0.1)):
    """The same spec executed and recorded once per wall time."""
    record = execute_spec(spec)
    ids = []
    for wall in wall_times:
        pinned = dataclasses.replace(record, wall_time=wall)
        ids.append(registry.record(spec, pinned))
    return ids


class TestDiffRuns:
    def test_same_digest_reruns_diff_clean(self):
        registry = make_registry()
        spec = make_spec(metrics=True, spans=True)
        a = registry.run(registry.record(spec, execute_spec(spec)))
        b = registry.run(registry.record(spec, execute_spec(spec)))
        diff = diff_runs(a, b)
        assert diff.same_digest
        assert diff.ok
        assert diff.deterministic_mismatches == []
        # every deterministic family is actually compared
        names = {f.name for f in diff.fields}
        assert "measurement.t_converged" in names
        assert "span_count" in names
        assert any(n.startswith("instant.") for n in names)
        assert any(n.startswith("metrics.") for n in names)

    def test_deterministic_drift_fails_the_diff(self):
        registry = make_registry()
        spec = make_spec()
        record = execute_spec(spec)
        a = registry.run(registry.record(spec, record))
        tampered = dataclasses.replace(record)
        tampered.measurement = dataclasses.replace(
            record.measurement, updates_tx=record.measurement.updates_tx + 1
        )
        b = registry.run(registry.record(spec, tampered))
        diff = diff_runs(a, b)
        assert not diff.ok
        assert [f.name for f in diff.deterministic_mismatches] == [
            "measurement.updates_tx"
        ]

    def test_wall_time_drift_is_informational_only(self):
        registry = make_registry()
        spec = make_spec()
        a_id, b_id = record_twice(registry, spec, wall_times=(0.1, 10.0))
        diff = diff_runs(registry.run(a_id), registry.run(b_id))
        assert diff.ok, "timing drift alone never fails a diff"
        assert [f.name for f in diff.timing_mismatches] == ["wall_time"]
        assert diff.timing_mismatches[0].rel_error == pytest.approx(0.99)

    def test_anatomy_compared_when_both_rows_carry_it(self):
        registry = make_registry()
        spec = make_spec(spans=True)
        a = registry.run(registry.record(spec, execute_spec(spec)))
        b = registry.run(registry.record(spec, execute_spec(spec)))
        diff = diff_runs(a, b)
        assert diff.ok
        names = {f.name for f in diff.fields}
        assert "anatomy.mrai_wait" in names
        assert "anatomy.critical_node" in names

    def test_anatomy_drift_fails_the_diff(self):
        registry = make_registry()
        spec = make_spec(spans=True)
        a = registry.run(registry.record(spec, execute_spec(spec)))
        b = registry.run(registry.record(spec, execute_spec(spec)))
        tampered = dict(b.anatomy)
        tampered["categories"] = dict(
            tampered["categories"], mrai_wait=123.456
        )
        b = dataclasses.replace(b, anatomy=tampered)
        diff = diff_runs(a, b)
        assert not diff.ok
        drifted = {f.name for f in diff.deterministic_mismatches}
        assert "anatomy.mrai_wait" in drifted

    def test_one_sided_anatomy_is_tolerated(self):
        # digest-neutral flag means a digest's history can mix
        # anatomy-on and anatomy-off rows; that is not drift
        registry = make_registry()
        spec = make_spec(spans=True)
        a = registry.run(registry.record(spec, execute_spec(spec)))
        b = dataclasses.replace(a, anatomy=None)
        diff = diff_runs(a, b)
        assert diff.ok
        one_sided = [f for f in diff.fields if f.name == "anatomy"]
        assert len(one_sided) == 1 and one_sided[0].ok

    def test_different_digests_not_ok(self):
        registry = make_registry()
        rows = []
        for seed in (7, 8):
            spec = make_spec(seed=seed)
            rows.append(registry.run(registry.record(spec, execute_spec(spec))))
        assert not diff_runs(*rows).ok


class TestDiffSweeps:
    def test_identical_sweeps_pair_and_pass(self):
        registry = make_registry()
        specs = [make_spec(seed=s) for s in (1, 2, 3)]
        for _ in range(2):
            ParallelRunner(1, registry=registry).run(specs)
        a, b = [s.sweep_id for s in registry.sweeps()]
        diff = diff_sweeps(registry, a, b)
        assert len(diff.pairs) == 3
        assert diff.ok
        assert diff.only_in_a == [] and diff.only_in_b == []

    def test_grid_mismatch_reported(self):
        registry = make_registry()
        ParallelRunner(1, registry=registry).run(
            [make_spec(seed=1), make_spec(seed=2)]
        )
        ParallelRunner(1, registry=registry).run(
            [make_spec(seed=2), make_spec(seed=3)]
        )
        a, b = [s.sweep_id for s in registry.sweeps()]
        diff = diff_sweeps(registry, a, b)
        assert not diff.ok
        assert diff.only_in_a == [make_spec(seed=1).digest()]
        assert diff.only_in_b == [make_spec(seed=3).digest()]
        assert len(diff.pairs) == 1 and diff.pairs[0].ok


class TestDetectRegressions:
    def test_stable_history_stays_quiet(self):
        registry = make_registry()
        record_twice(
            registry, make_spec(), wall_times=(0.1, 0.11, 0.09, 0.1)
        )
        assert detect_regressions(registry) == []

    def test_inflated_wall_time_flagged(self):
        registry = make_registry()
        record_twice(
            registry, make_spec(), wall_times=(0.1, 0.11, 0.09, 0.5)
        )
        (regression,) = detect_regressions(registry)
        assert regression.kind == "wall_time"
        assert regression.latest_value == pytest.approx(0.5)
        assert regression.baseline_median == pytest.approx(0.1)
        assert "wall time" in regression.describe()

    def test_short_history_never_gates_wall_time(self):
        registry = make_registry()
        record_twice(registry, make_spec(), wall_times=(0.1, 9.9))
        assert detect_regressions(registry, min_history=3) == []

    def test_cached_runs_excluded_from_baseline_and_gate(self):
        registry = make_registry()
        spec = make_spec()
        record = execute_spec(spec)
        for wall in (0.1, 0.11, 0.09):
            registry.record(
                spec, dataclasses.replace(record, wall_time=wall)
            )
        # a cache hit is near-instant but must never be gated (nor
        # poison the baseline for later executed runs)
        hit = dataclasses.replace(record, wall_time=9.0, cached=True)
        registry.record(spec, hit)
        assert detect_regressions(registry) == []

    def test_deterministic_drift_flagged(self):
        registry = make_registry()
        spec = make_spec()
        record = execute_spec(spec)
        registry.record(spec, record)
        tampered = dataclasses.replace(record)
        tampered.measurement = dataclasses.replace(
            record.measurement,
            t_converged=record.measurement.t_converged + 1.0,
        )
        registry.record(spec, tampered)
        flagged = detect_regressions(registry)
        assert [r.kind for r in flagged] == ["deterministic"]
        assert "measurement.t_converged" in flagged[0].detail


class TestReportGate:
    """Parity with the old benchmarks/compare_baselines.py behaviour."""

    def test_parse_number_token(self):
        assert parse_number_token("12") == (12.0, True)
        assert parse_number_token("2.5s") == (2.5, False)
        assert parse_number_token("1.3x") == (1.3, False)
        assert parse_number_token("85%") == (85.0, False)
        assert parse_number_token("1,024") == (1024.0, False)
        assert parse_number_token("(7);") == (7.0, True)
        assert parse_number_token("rate") is None

    def test_identical_reports_pass(self):
        assert compare_report_texts("ran 12 in 3.5s", "ran 12 in 3.5s", 0.1) == []

    def test_timing_within_tolerance_passes(self):
        assert compare_report_texts("took 3.5s", "took 3.9s", 0.5) == []

    def test_timing_outside_tolerance_fails(self):
        problems = compare_report_texts("took 1.0s", "took 9.0s", 0.5)
        assert any("tolerance" in p for p in problems)

    def test_integer_drift_always_fails(self):
        problems = compare_report_texts("count 7", "count 8", 0.9)
        assert any("deterministic count" in p for p in problems)

    def test_structure_change_fails(self):
        problems = compare_report_texts("a b c", "a b", 0.5)
        assert any("structure changed" in p for p in problems)

    def test_compare_dirs(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        base.mkdir(), cand.mkdir()
        (base / "a.txt").write_text("ran 3 in 1.0s")
        (cand / "a.txt").write_text("ran 3 in 1.2s")
        (base / "b.txt").write_text("count 5")
        names, failures = compare_report_dirs(base, cand, 0.5)
        assert names == ["a.txt", "b.txt"]
        assert list(failures) == ["b.txt"]
        assert failures["b.txt"] == ["missing from candidate directory"]

    def test_compare_dirs_require(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        base.mkdir(), cand.mkdir()
        (base / "a.txt").write_text("x")
        (cand / "a.txt").write_text("x")
        _, failures = compare_report_dirs(
            base, cand, 0.5, require=["vital.txt"]
        )
        assert "vital.txt" in failures
