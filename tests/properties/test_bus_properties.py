"""Property suite: bus sampling-stride and category-prefix semantics.

The bus's compiled routes and the lazy publishing path both reimplement
the subscription contract (prefix filters, sampling strides) for speed;
these properties pin that contract against a straightforward reference
model over randomized category streams, including the edge cases that
bit the route compiler hardest: stride 1 (every record), strides larger
than the whole stream (only the first match delivers), and the empty
prefix (matches only the empty category or categories starting with
``"."`` — *not* everything; ``categories=None`` is "everything").
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.eventsim import InstrumentationBus, Simulator  # noqa: E402

pytestmark = pytest.mark.properties

BOUNDED = settings(max_examples=25, deadline=None, derandomize=True)

CATEGORIES = st.sampled_from(
    ["bgp", "bgp.update", "bgp.update.tx", "fib.change", "x", ""]
)
STREAMS = st.lists(CATEGORIES, min_size=0, max_size=40)


def matches(category, prefix):
    """The documented prefix rule (TraceRecord.matches)."""
    return category == prefix or category.startswith(prefix + ".")


def publish_stream(stream, *, categories=None, sample=1, lazy=False):
    """Publish a stream against one subscriber; returns delivered records."""
    bus = InstrumentationBus(Simulator(seed=0))
    got = []
    bus.subscribe(got.append, categories=categories, sample=sample)
    for index, category in enumerate(stream):
        if lazy:
            bus.record_lazy(category, "n", lambda i=index: {"i": i})
        else:
            bus.record(category, "n", i=index)
    return bus, got


class TestSamplingStride:
    @given(stream=STREAMS, lazy=st.booleans())
    @BOUNDED
    def test_stride_one_delivers_everything(self, stream, lazy):
        _, got = publish_stream(stream, sample=1, lazy=lazy)
        assert [r.data["i"] for r in got] == list(range(len(stream)))

    @given(stream=STREAMS, lazy=st.booleans())
    @BOUNDED
    def test_stride_beyond_stream_delivers_first_match_only(
        self, stream, lazy
    ):
        _, got = publish_stream(stream, sample=len(stream) + 1, lazy=lazy)
        expected = [0] if stream else []
        assert [r.data["i"] for r in got] == expected

    @given(
        stream=STREAMS,
        stride=st.integers(min_value=1, max_value=7),
        lazy=st.booleans(),
    )
    @BOUNDED
    def test_stride_keeps_every_nth_matching_record(
        self, stream, stride, lazy
    ):
        _, got = publish_stream(stream, sample=stride, lazy=lazy)
        assert [r.data["i"] for r in got] == list(
            range(0, len(stream), stride)
        )

    @given(
        stream=STREAMS,
        prefix=st.sampled_from(["bgp", "bgp.update", ""]),
        stride=st.integers(min_value=1, max_value=5),
        lazy=st.booleans(),
    )
    @BOUNDED
    def test_stride_counts_only_matching_records(
        self, stream, prefix, stride, lazy
    ):
        """The stride advances per *matching* record, not per publish."""
        _, got = publish_stream(
            stream, categories=(prefix,), sample=stride, lazy=lazy
        )
        matching = [
            i for i, c in enumerate(stream) if matches(c, prefix)
        ]
        assert [r.data["i"] for r in got] == matching[::stride]


class TestPrefixFilter:
    @given(stream=STREAMS, prefix=CATEGORIES, lazy=st.booleans())
    @BOUNDED
    def test_filter_matches_reference_model(self, stream, prefix, lazy):
        _, got = publish_stream(stream, categories=(prefix,), lazy=lazy)
        expected = [c for c in stream if matches(c, prefix)]
        assert [r.category for r in got] == expected

    @given(stream=STREAMS, lazy=st.booleans())
    @BOUNDED
    def test_empty_prefix_is_not_a_wildcard(self, stream, lazy):
        """``("",)`` matches only the empty category (or ``.``-rooted
        ones) — subscribing to everything is ``categories=None``."""
        _, got = publish_stream(stream, categories=("",), lazy=lazy)
        expected = [c for c in stream if c == "" or c.startswith(".")]
        assert [r.category for r in got] == expected

    @given(stream=STREAMS, lazy=st.booleans())
    @BOUNDED
    def test_counts_are_complete_regardless_of_filters(self, stream, lazy):
        bus, _ = publish_stream(stream, categories=("bgp.update",), lazy=lazy)
        assert bus.records_published == len(stream)
        assert sum(bus.counts.values()) == len(stream)


class TestLazyEagerAgreement:
    @given(
        stream=STREAMS,
        prefix=st.sampled_from([None, "bgp", "bgp.update", ""]),
        stride=st.integers(min_value=1, max_value=6),
    )
    @BOUNDED
    def test_lazy_and_eager_deliver_identical_records(
        self, stream, prefix, stride
    ):
        categories = (prefix,) if prefix is not None else None
        _, eager = publish_stream(
            stream, categories=categories, sample=stride, lazy=False
        )
        _, lazy = publish_stream(
            stream, categories=categories, sample=stride, lazy=True
        )
        assert eager == lazy
