"""Property-based tests: random topologies + fault schedules.

Three families of properties, each over hypothesis-generated inputs:

1. **Invariants hold**: any generated fault schedule on any small
   topology leaves the network with no forwarding loops, no stale
   Loc-RIB state, and well-ordered per-fault measurements.
2. **Determinism**: running the identical (topology, schedule, seeds)
   twice yields bit-identical event traces and convergence times.
3. **Centralization helps**: on a clique with a meaningful MRAI, the
   full-SDN deployment never converges *slower* than pure BGP on a
   withdrawal — the paper's core claim, as a property.

The suite is skipped cleanly when hypothesis is not installed (it is an
optional dependency; CI runs it in a dedicated job).  Examples are
bounded and derandomized so the suite stays fast and reproducible.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.experiments.common import paper_config, sdn_set_for  # noqa: E402
from repro.faults import FaultInjector, FaultSchedule  # noqa: E402
from repro.framework.convergence import measure_event  # noqa: E402
from repro.framework.experiment import Experiment  # noqa: E402
from repro.topology.builders import clique, line, ring, star  # noqa: E402

pytestmark = pytest.mark.properties

BOUNDED = settings(max_examples=10, deadline=None, derandomize=True)

TOPOLOGIES = {"clique": clique, "ring": ring, "star": star, "line": line}


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def topology_spec(draw):
    name = draw(st.sampled_from(sorted(TOPOLOGIES)))
    n = draw(st.integers(min_value=3, max_value=6))
    return name, n


@st.composite
def fault_schedule(draw, n):
    """A small schedule of structurally valid faults for an n-AS net.

    Only faults whose actors exist are generated; AS 1 is reserved
    legacy (it is also the announcing origin), so session resets and
    crashes target it or its neighbours safely on every topology
    (builders connect AS 1 <-> AS 2 in all four families).
    """
    schedule = FaultSchedule(fault_seed=draw(st.integers(0, 3)))
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        at = 1.0 + 2.0 * index + draw(
            st.floats(0.0, 1.0, allow_nan=False, width=16)
        )
        kind = draw(
            st.sampled_from(
                ["link_outage", "session_reset", "router_crash",
                 "prefix_flap", "controller_fail", "controller_partition"]
            )
        )
        if kind == "link_outage":
            schedule.link_down(1, 2, at=at)
            schedule.link_up(1, 2, at=at + draw(st.floats(0.5, 2.0)))
        elif kind == "session_reset":
            schedule.session_reset(1, 2, at=at)
        elif kind == "router_crash":
            asn = draw(st.integers(min_value=2, max_value=n))
            schedule.router_crash(
                asn, at=at, down_for=draw(st.floats(1.0, 3.0))
            )
        elif kind == "prefix_flap":
            schedule.prefix_flap(
                1, at=at,
                count=draw(st.integers(1, 3)),
                interval=draw(st.floats(0.2, 0.8)),
                first=draw(st.sampled_from(["withdraw", "announce"])),
            )
        elif kind == "controller_fail":
            schedule.controller_fail(at=at, outage=draw(st.floats(0.5, 2.0)))
        else:
            schedule.controller_partition(
                at=at, duration=draw(st.floats(0.5, 2.0))
            )
    return schedule


def build_experiment(topo_name, n, sdn_count, seed, mrai=2.0):
    topology = TOPOLOGIES[topo_name](n)
    members = sdn_set_for(topology, sdn_count, frozenset({1}))
    exp = Experiment(
        topology, sdn_members=members,
        config=paper_config(seed=seed, mrai=mrai),
    ).start()
    exp.announce(1, exp.as_prefix(1))
    exp.wait_converged()
    return exp


def run_faults(topo_name, n, sdn_count, seed, schedule):
    exp = build_experiment(topo_name, n, sdn_count, seed)
    return FaultInjector(exp, schedule).run()


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
class TestInvariantsHold:
    @BOUNDED
    @given(
        topo=topology_spec(),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    def test_random_schedule_preserves_invariants(self, topo, seed, data):
        name, n = topo
        schedule = data.draw(fault_schedule(n))
        sdn_count = data.draw(st.integers(min_value=0, max_value=n - 1))
        result = run_faults(name, n, sdn_count, seed, schedule)
        assert result.ok, "\n".join(str(v) for v in result.violations)

    @BOUNDED
    @given(
        topo=topology_spec(),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    def test_per_fault_time_ordering(self, topo, seed, data):
        name, n = topo
        schedule = data.draw(fault_schedule(n))
        result = run_faults(name, n, n - 1, seed, schedule)
        for report in result.reports:
            if report.measurement is None:
                continue
            m = report.measurement
            assert m.t_settled >= m.t_converged
            assert m.t_converged >= m.t_state_converged >= m.t_event


class TestDeterminism:
    @BOUNDED
    @given(
        topo=topology_spec(),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    def test_identical_inputs_identical_traces(self, topo, seed, data):
        name, n = topo
        schedule = data.draw(fault_schedule(n))
        sdn_count = data.draw(st.integers(min_value=0, max_value=n - 1))
        first = run_faults(name, n, sdn_count, seed, schedule)
        second = run_faults(name, n, sdn_count, seed, schedule)
        assert first.trace_digest == second.trace_digest
        assert first.convergence_times() == second.convergence_times()
        assert first.t_end == second.t_end

    @BOUNDED
    @given(
        topo=topology_spec(),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    def test_schedule_spec_form_is_behaviour_preserving(
        self, topo, seed, data
    ):
        """Round-tripping a schedule through its JSON spec must not
        change what it does."""
        name, n = topo
        schedule = data.draw(fault_schedule(n))
        revived = FaultSchedule.from_spec(schedule.to_json())
        first = run_faults(name, n, 1, seed, schedule)
        second = run_faults(name, n, 1, seed, revived)
        assert first.trace_digest == second.trace_digest


class TestCentralizationHelps:
    @BOUNDED
    @given(
        n=st.integers(min_value=4, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_full_sdn_withdrawal_never_slower_than_pure_bgp(self, n, seed):
        """The paper's claim as a property: with MRAI-paced path
        exploration (clique, mrai >= 5), replacing every convertible AS
        with the centralized cluster never slows a withdrawal down."""
        times = {}
        for sdn_count in (0, n - 1):
            topology = clique(n)
            members = sdn_set_for(topology, sdn_count, frozenset({1}))
            exp = Experiment(
                topology, sdn_members=members,
                config=paper_config(seed=seed, mrai=5.0),
            ).start()
            prefix = exp.announce(1)
            exp.wait_converged()
            m = measure_event(exp, lambda: exp.withdraw(1, prefix))
            times[sdn_count] = m.convergence_time
        assert times[n - 1] <= times[0]
