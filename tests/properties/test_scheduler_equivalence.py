"""Property suite: the calendar queue is pop-for-pop identical to the heap.

The calendar scheduler earns its digest-preserving claim here: for any
randomized event program — duplicate timestamps on a lattice, zero-delay
self-schedules, far-future events that force bucket-array resizes and
the fruitless-year fallback scan, and cancellations — running the same
program on a heap-scheduled and a calendar-scheduled simulator yields
the exact same execution order, final clock, and processed-event count.

Examples are bounded and derandomized (same discipline as
``test_fault_properties``) so the suite stays fast and reproducible.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.eventsim import SCHEDULERS, Simulator  # noqa: E402

pytestmark = pytest.mark.properties

BOUNDED = settings(max_examples=25, deadline=None, derandomize=True)

#: delay pools stressing distinct kernel regimes: an exact-collision
#: lattice (many identical timestamps in one bucket), continuous values,
#: zero delays (same-instant cascades), and far-future outliers whose
#: day number is thousands of bucket-years ahead (exercising the
#: calendar's full-scan fallback and width re-estimation on resize).
LATTICE = st.sampled_from([0.0, 0.001, 0.01, 0.01, 0.5, 1.0])
CONTINUOUS = st.floats(
    min_value=0.0, max_value=20.0, allow_nan=False, width=32
)
FAR_FUTURE = st.sampled_from([500.0, 9_999.0, 123_456.0])
DELAYS = st.one_of(LATTICE, CONTINUOUS, FAR_FUTURE)


@st.composite
def event_programs(draw):
    """A script of top-level events, each optionally spawning children
    and optionally cancelling its predecessor."""
    n = draw(st.integers(min_value=1, max_value=30))
    return [
        {
            "delay": draw(DELAYS),
            "children": draw(st.lists(DELAYS, max_size=3)),
            "cancel_prev": draw(st.booleans()),
        }
        for _ in range(n)
    ]


def run_program(program, scheduler):
    """Execute one script; returns (execution log, final now, count)."""
    sim = Simulator(seed=1, scheduler=scheduler)
    log = []

    def make_callback(tag, children):
        def callback():
            log.append((tag, sim.now))
            for branch, delay in enumerate(children):
                # one level of zero-or-more children per event keeps the
                # program finite while still producing same-instant
                # cascades when delay == 0.
                sim.schedule(delay, make_callback((tag, branch), ()))

        return callback

    handles = []
    for index, item in enumerate(program):
        handle = sim.schedule(
            item["delay"], make_callback(index, tuple(item["children"]))
        )
        if item["cancel_prev"] and len(handles) >= 1:
            sim.cancel(handles[-1])
        handles.append(handle)
    sim.run()
    return log, sim.now, sim.events_processed


class TestSchedulerEquivalence:
    @given(program=event_programs())
    @BOUNDED
    def test_identical_execution_order(self, program):
        results = {s: run_program(program, s) for s in SCHEDULERS}
        assert results["heap"] == results["calendar"]

    @given(delays=st.lists(LATTICE, min_size=1, max_size=60))
    @BOUNDED
    def test_duplicate_timestamp_storm_pops_identically(self, delays):
        def run(scheduler):
            sim = Simulator(seed=0, scheduler=scheduler)
            order = []
            for index, delay in enumerate(delays):
                sim.schedule(delay, lambda i=index: order.append((i, sim.now)))
            sim.run()
            return order

        assert run("heap") == run("calendar")

    @given(
        delays=st.lists(CONTINUOUS, min_size=2, max_size=40),
        cancel_stride=st.integers(min_value=2, max_value=5),
    )
    @BOUNDED
    def test_cancellation_pattern_preserves_equivalence(
        self, delays, cancel_stride
    ):
        def run(scheduler):
            sim = Simulator(seed=0, scheduler=scheduler)
            order = []
            handles = [
                sim.schedule(d, lambda i=i: order.append(i))
                for i, d in enumerate(delays)
            ]
            for handle in handles[::cancel_stride]:
                sim.cancel(handle)
            sim.run()
            return order, sim.now, sim.events_processed

        assert run("heap") == run("calendar")
