"""Deliberately misbehaving scenarios for runner fault-tolerance tests.

Module-level (importable, picklable) so worker processes can rebuild
them from a :class:`~repro.runner.RunSpec`.
"""

import os
import pathlib
import time
from dataclasses import dataclass

from repro.experiments.common import Scenario, WithdrawalScenario


@dataclass
class CrashScenario(Scenario):
    """Kills its worker process outright (no Python exception)."""

    name: str = "crash"

    def event(self, exp) -> None:
        os._exit(13)


@dataclass
class RaisingScenario(Scenario):
    """Raises a plain exception from the measured event."""

    name: str = "raising"

    def event(self, exp) -> None:
        raise ValueError("scenario exploded on purpose")


@dataclass
class FlakyScenario(WithdrawalScenario):
    """Fails on the first attempt, succeeds on every later one.

    Cross-process state lives in ``flag_path``: the first execution
    creates the file and raises; later executions see it and behave
    like a normal withdrawal.
    """

    name: str = "flaky"
    flag_path: str = ""

    def event(self, exp) -> None:
        flag = pathlib.Path(self.flag_path)
        if not flag.exists():
            flag.write_text("attempted")
            raise RuntimeError("flaky first attempt")
        super().event(exp)


@dataclass
class HangScenario(Scenario):
    """Blocks in real (wall-clock) time — a hung worker."""

    name: str = "hang"
    sleep_seconds: float = 30.0

    def event(self, exp) -> None:
        time.sleep(self.sleep_seconds)
