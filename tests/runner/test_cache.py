"""Result cache: hit/miss, invalidation, atomicity of the contract."""

import os
import pathlib
import subprocess
import sys

from repro.experiments.common import run_fraction_sweep, WithdrawalScenario
from repro.faults import FaultSchedule
from repro.runner import ResultCache, RunRecord, execute_spec

from .test_jobs import make_spec


class TestHitMiss:
    def test_empty_cache_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_spec()) is None
        assert len(cache) == 0

    def test_put_then_get_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        record = execute_spec(spec)
        cache.put(spec, record)
        assert len(cache) == 1

        hit = cache.get(spec)
        assert hit is not None
        assert hit.cached is True
        assert hit.ok is True
        assert (
            hit.measurement.convergence_time
            == record.measurement.convergence_time
        )
        assert hit.measurement.updates_tx == record.measurement.updates_tx
        assert hit.worker == record.worker

    def test_metrics_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec(metrics=True, trace_level="off")
        record = execute_spec(spec)
        assert record.metrics is not None
        cache.put(spec, record)

        hit = cache.get(spec)
        assert hit.metrics == record.metrics

    def test_metrics_absent_when_not_requested(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        record = execute_spec(spec)
        assert record.metrics is None
        cache.put(spec, record)
        assert cache.get(spec).metrics is None

    def test_metrics_flag_changes_digest(self):
        assert make_spec().digest() != make_spec(metrics=True).digest()
        assert (
            make_spec().digest() != make_spec(trace_level="off").digest()
        )

    def test_spans_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec(spans=True)
        record = execute_spec(spec)
        assert record.spans, "traced run must capture spans"
        cache.put(spec, record)

        hit = cache.get(spec)
        assert hit.spans == record.spans
        # JSON round-trip keeps the provenance DAG reconstructable
        root_ids = [s["span_id"] for s in hit.spans if s["parent_id"] is None]
        assert root_ids

    def test_spans_absent_when_not_requested(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        record = execute_spec(spec)
        assert record.spans is None
        cache.put(spec, record)
        assert cache.get(spec).spans is None

    def test_different_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, execute_spec(spec))
        assert cache.get(make_spec(seed=99)) is None

    def test_failed_records_never_stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, RunRecord(digest=spec.digest(), ok=False, error="x"))
        assert len(cache) == 0
        assert cache.get(spec) is None


class TestInvalidation:
    def test_code_version_mismatch_is_a_miss(self, tmp_path):
        spec = make_spec()
        writer = ResultCache(tmp_path, code_version="1.0.0")
        writer.put(spec, execute_spec(spec))
        assert writer.get(spec) is not None

        reader = ResultCache(tmp_path, code_version="2.0.0")
        assert reader.get(spec) is None
        # and the new version overwrites in place
        reader.put(spec, execute_spec(spec))
        assert reader.get(spec) is not None
        assert writer.get(spec) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, execute_spec(spec))
        (tmp_path / f"{spec.digest()}.json").write_text("{not json")
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in (1, 2, 3):
            spec = make_spec(seed=seed)
            cache.put(spec, execute_spec(spec))
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0


def _schedule_built_forward() -> FaultSchedule:
    return (
        FaultSchedule(fault_seed=7)
        .link_down(1, 2, at=1.0)
        .router_crash(3, at=2.0, down_for=4.0)
    )


def _schedule_from_shuffled_spec() -> FaultSchedule:
    # same schedule expressed as a dict spec with every key order
    # scrambled relative to the builder's
    return FaultSchedule.from_spec(
        {
            "events": [
                {"b": 2, "kind": "link_down", "a": 1, "at": 1.0},
                {"down_for": 4.0, "at": 2.0, "asn": 3, "kind": "router_crash"},
            ],
            "fault_seed": 7,
        }
    )


class TestFaultScheduleDigests:
    """RunSpecs embedding fault schedules must hash deterministically
    regardless of how (and in which process) the schedule was built."""

    def test_faults_change_the_digest(self):
        plain = make_spec()
        faulted = make_spec(faults=_schedule_built_forward().canonical())
        assert plain.digest() != faulted.digest()

    def test_fault_free_digest_unchanged_by_the_faults_field(self):
        # faults=None must not perturb digests of pre-existing specs
        # (warm caches stay valid across the feature's introduction)
        assert "faults" not in make_spec().describe()

    def test_dict_ordering_does_not_change_digest(self):
        built = make_spec(faults=_schedule_built_forward().canonical())
        shuffled = make_spec(faults=_schedule_from_shuffled_spec().canonical())
        assert built.digest() == shuffled.digest()

    def test_different_schedules_different_digests(self):
        a = make_spec(faults=_schedule_built_forward().canonical())
        other = FaultSchedule(fault_seed=8).link_down(1, 2, at=1.0)
        b = make_spec(faults=other.canonical())
        assert a.digest() != b.digest()

    def test_digest_stable_across_processes(self):
        """A fresh interpreter (different PYTHONHASHSEED, so different
        set/dict iteration hashing) must produce the same digest."""
        spec = make_spec(faults=_schedule_built_forward().canonical())
        code = (
            "from tests.runner.test_cache import _schedule_built_forward\n"
            "from tests.runner.test_jobs import make_spec\n"
            "spec = make_spec(faults=_schedule_built_forward().canonical())\n"
            "print(spec.digest())\n"
        )
        root = pathlib.Path(__file__).parents[2]
        for hashseed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONPATH"] = f"{root / 'src'}{os.pathsep}{root}"
            env["PYTHONHASHSEED"] = hashseed
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env=env, cwd=str(root),
            )
            assert out.stdout.strip() == spec.digest()


class TestStatsAndPrune:
    def test_empty_cache_stats(self, tmp_path):
        stats = ResultCache(tmp_path / "absent").stats()
        assert stats.entries == 0 and stats.total_bytes == 0
        assert stats.hits == 0 and stats.misses == 0
        assert stats.hit_rate == 0.0

    def test_stats_count_entries_and_lookups(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.get(spec)  # miss
        cache.put(spec, execute_spec(spec))
        cache.get(spec)  # hit
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.total_bytes > 0
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_prune_removes_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, execute_spec(spec))
        (tmp_path / "broken.json").write_text("{not json")
        (tmp_path / "wrong-shape.json").write_text('["a", "list"]')
        assert cache.prune() == 2
        assert cache.get(spec) is not None

    def test_prune_removes_other_code_versions(self, tmp_path):
        spec = make_spec()
        old = ResultCache(tmp_path, code_version="1.0.0")
        old.put(spec, execute_spec(spec))
        new = ResultCache(tmp_path, code_version="2.0.0")
        new.put(make_spec(seed=9), execute_spec(make_spec(seed=9)))
        assert new.prune() == 1
        assert old.get(spec) is None
        assert new.get(make_spec(seed=9)) is not None

    def test_prune_leaves_foreign_files_alone(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "README.txt").write_text("not a cache entry")
        (tmp_path / ".tmp-half.json").write_text("{")
        assert cache.prune() == 0
        assert (tmp_path / "README.txt").exists()
        assert (tmp_path / ".tmp-half.json").exists()

    def test_profile_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec(profile=True)
        record = execute_spec(spec)
        assert record.profile
        cache.put(spec, record)
        hit = cache.get(spec)
        assert hit.profile == record.profile

    def test_sweep_timing_carries_cache_traffic(self, tmp_path):
        kwargs = dict(n=4, sdn_counts=[0], runs=2, mrai=1.0)
        cold = run_fraction_sweep(
            WithdrawalScenario, cache=str(tmp_path), **kwargs
        )
        assert cold.timing.cache_hits == 0
        assert cold.timing.cache_misses == 2
        assert cold.timing.cache_entries == 2
        assert cold.timing.cache_bytes > 0

        warm = run_fraction_sweep(
            WithdrawalScenario, cache=str(tmp_path), **kwargs
        )
        assert warm.timing.cache_hits == 2
        assert warm.timing.cache_misses == 0

    def test_sweep_timing_zero_without_cache(self):
        result = run_fraction_sweep(
            WithdrawalScenario, n=4, sdn_counts=[0], runs=1, mrai=1.0,
        )
        assert result.timing.cache_hits == 0
        assert result.timing.cache_misses == 0
        assert result.timing.cache_entries == 0


class TestSweepIntegration:
    def test_warm_cache_executes_zero_trials(self, tmp_path):
        kwargs = dict(n=4, sdn_counts=[0, 2], runs=2, mrai=1.0)
        cold = run_fraction_sweep(
            WithdrawalScenario, cache=str(tmp_path), **kwargs
        )
        assert cold.timing.executed == 4
        assert cold.timing.cached == 0

        warm = run_fraction_sweep(
            WithdrawalScenario, cache=str(tmp_path), **kwargs
        )
        assert warm.timing.executed == 0
        assert warm.timing.cached == 4
        assert all(r.cached for p in warm.points for r in p.runs)
        assert [p.times for p in warm.points] == [p.times for p in cold.points]

    def test_partial_cache_fills_the_gap(self, tmp_path):
        run_fraction_sweep(
            WithdrawalScenario, n=4, sdn_counts=[0], runs=2, mrai=1.0,
            cache=str(tmp_path),
        )
        widened = run_fraction_sweep(
            WithdrawalScenario, n=4, sdn_counts=[0, 2], runs=2, mrai=1.0,
            cache=str(tmp_path),
        )
        assert widened.timing.cached == 2
        assert widened.timing.executed == 2
