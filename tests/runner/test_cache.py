"""Result cache: hit/miss, invalidation, atomicity of the contract."""

from repro.experiments.common import run_fraction_sweep, WithdrawalScenario
from repro.runner import ResultCache, RunRecord, execute_spec

from .test_jobs import make_spec


class TestHitMiss:
    def test_empty_cache_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(make_spec()) is None
        assert len(cache) == 0

    def test_put_then_get_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        record = execute_spec(spec)
        cache.put(spec, record)
        assert len(cache) == 1

        hit = cache.get(spec)
        assert hit is not None
        assert hit.cached is True
        assert hit.ok is True
        assert (
            hit.measurement.convergence_time
            == record.measurement.convergence_time
        )
        assert hit.measurement.updates_tx == record.measurement.updates_tx
        assert hit.worker == record.worker

    def test_metrics_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec(metrics=True, trace_level="off")
        record = execute_spec(spec)
        assert record.metrics is not None
        cache.put(spec, record)

        hit = cache.get(spec)
        assert hit.metrics == record.metrics

    def test_metrics_absent_when_not_requested(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        record = execute_spec(spec)
        assert record.metrics is None
        cache.put(spec, record)
        assert cache.get(spec).metrics is None

    def test_metrics_flag_changes_digest(self):
        assert make_spec().digest() != make_spec(metrics=True).digest()
        assert (
            make_spec().digest() != make_spec(trace_level="off").digest()
        )

    def test_different_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, execute_spec(spec))
        assert cache.get(make_spec(seed=99)) is None

    def test_failed_records_never_stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, RunRecord(digest=spec.digest(), ok=False, error="x"))
        assert len(cache) == 0
        assert cache.get(spec) is None


class TestInvalidation:
    def test_code_version_mismatch_is_a_miss(self, tmp_path):
        spec = make_spec()
        writer = ResultCache(tmp_path, code_version="1.0.0")
        writer.put(spec, execute_spec(spec))
        assert writer.get(spec) is not None

        reader = ResultCache(tmp_path, code_version="2.0.0")
        assert reader.get(spec) is None
        # and the new version overwrites in place
        reader.put(spec, execute_spec(spec))
        assert reader.get(spec) is not None
        assert writer.get(spec) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cache.put(spec, execute_spec(spec))
        (tmp_path / f"{spec.digest()}.json").write_text("{not json")
        assert cache.get(spec) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in (1, 2, 3):
            spec = make_spec(seed=seed)
            cache.put(spec, execute_spec(spec))
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0


class TestSweepIntegration:
    def test_warm_cache_executes_zero_trials(self, tmp_path):
        kwargs = dict(n=4, sdn_counts=[0, 2], runs=2, mrai=1.0)
        cold = run_fraction_sweep(
            WithdrawalScenario, cache=str(tmp_path), **kwargs
        )
        assert cold.timing.executed == 4
        assert cold.timing.cached == 0

        warm = run_fraction_sweep(
            WithdrawalScenario, cache=str(tmp_path), **kwargs
        )
        assert warm.timing.executed == 0
        assert warm.timing.cached == 4
        assert all(r.cached for p in warm.points for r in p.runs)
        assert [p.times for p in warm.points] == [p.times for p in cold.points]

    def test_partial_cache_fills_the_gap(self, tmp_path):
        run_fraction_sweep(
            WithdrawalScenario, n=4, sdn_counts=[0], runs=2, mrai=1.0,
            cache=str(tmp_path),
        )
        widened = run_fraction_sweep(
            WithdrawalScenario, n=4, sdn_counts=[0, 2], runs=2, mrai=1.0,
            cache=str(tmp_path),
        )
        assert widened.timing.cached == 2
        assert widened.timing.executed == 2
