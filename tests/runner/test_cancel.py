"""Runner-pool cancellation by spec digest.

Cancellation takes effect at scheduling boundaries: queued jobs never
start, mid-flight results are discarded, and — critically — cache hits
and already-finalized records are untouched, and a cancelled record is
never written to the cache.
"""

import threading

from repro.experiments.common import WithdrawalScenario
from repro.runner import ParallelRunner, RunSpec
from repro.topology.builders import clique


def make_spec(**overrides):
    base = dict(
        scenario_factory=WithdrawalScenario,
        topology_factory=clique,
        n=4,
        sdn_count=2,
        seed=7,
        mrai=1.0,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestCancelSerial:
    def test_cancel_before_run_skips_execution(self):
        spec = make_spec()
        runner = ParallelRunner(1)
        runner.cancel(spec.digest())
        record = runner.run([spec])[0]
        assert not record.ok
        assert record.cancelled
        assert "cancelled" in record.error

    def test_cancelled_record_never_cached(self, tmp_path):
        spec = make_spec()
        runner = ParallelRunner(1, cache=str(tmp_path))
        runner.cancel(spec.digest())
        runner.run([spec])
        assert runner.cache.get(spec) is None
        # a fresh runner over the same cache executes normally
        clean = ParallelRunner(1, cache=str(tmp_path))
        record = clean.run([spec])[0]
        assert record.ok and not record.cached

    def test_cache_hits_ignore_cancellation(self, tmp_path):
        spec = make_spec()
        warm = ParallelRunner(1, cache=str(tmp_path))
        baseline = warm.run([spec])[0]
        assert baseline.ok

        runner = ParallelRunner(1, cache=str(tmp_path))
        runner.cancel(spec.digest())
        record = runner.run([spec])[0]
        assert record.ok
        assert record.cached
        assert not record.cancelled
        assert (
            record.measurement.convergence_time
            == baseline.measurement.convergence_time
        )

    def test_only_targeted_digest_cancelled(self):
        doomed, spared = make_spec(seed=1), make_spec(seed=2)
        runner = ParallelRunner(1)
        runner.cancel(doomed.digest())
        records = runner.run([doomed, spared])
        assert records[0].cancelled and not records[0].ok
        assert records[1].ok and not records[1].cancelled

    def test_completed_records_unaffected_by_late_cancel(self):
        spec = make_spec()
        runner = ParallelRunner(1)
        record = runner.run([spec])[0]
        assert record.ok
        runner.cancel(spec.digest())  # after the fact: a no-op
        assert record.ok and not record.cancelled

    def test_cancel_mid_sweep_from_another_thread(self):
        """Cancel later jobs from a second thread while the first runs
        (the service's running-job cancellation path, minus the HTTP)."""
        from repro.runner.progress import CallbackProgress

        first = make_spec(seed=1)
        rest = [make_spec(seed=s) for s in (2, 3)]
        runner = ParallelRunner(1)
        done = threading.Event()

        def cancel_rest(event, payload):
            if event == "job_started" and not done.is_set():
                done.set()
                thread = threading.Thread(
                    target=lambda: [
                        runner.cancel(spec.digest()) for spec in rest
                    ]
                )
                thread.start()
                thread.join()

        runner.progress = CallbackProgress(cancel_rest)
        records = runner.run([first] + rest)
        assert records[0].ok
        assert all(r.cancelled for r in records[1:])


class TestCancelParallel:
    def test_queued_jobs_cancelled_in_pool_mode(self):
        specs = [make_spec(seed=s) for s in range(1, 4)]
        runner = ParallelRunner(2, timeout=60.0)
        for spec in specs[1:]:
            runner.cancel(spec.digest())
        records = runner.run(specs)
        assert records[0].ok
        assert all(r.cancelled and not r.ok for r in records[1:])

    def test_all_cancelled_drains_cleanly(self):
        specs = [make_spec(seed=s) for s in range(1, 4)]
        runner = ParallelRunner(2)
        for spec in specs:
            runner.cancel(spec.digest())
        records = runner.run(specs)
        assert all(r.cancelled for r in records)
        assert runner.last_timing.failed == len(specs)

    def test_inflight_cancel_discards_completed_result(self):
        """Cancelling while a job executes in the pool discards its
        eventual (successful) result at the completion boundary."""
        from repro.runner.progress import CallbackProgress

        spec = make_spec(seed=1)
        runner = ParallelRunner(2, timeout=60.0)

        def on_event(event, payload):
            if event == "job_started":
                runner.cancel(spec.digest())

        runner.progress = CallbackProgress(on_event)
        record = runner.run([spec])[0]
        assert not record.ok
        assert record.cancelled
