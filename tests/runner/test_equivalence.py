"""Serial vs parallel sweeps must be bit-identical, and export carries
the new per-run runner metadata."""

import json

from repro.experiments.common import WithdrawalScenario, run_fraction_sweep
from repro.experiments.export import sweep_rows, sweep_to_json

SWEEP_KWARGS = dict(n=4, sdn_counts=[0, 2, 3], runs=3, mrai=1.0)


def _times(result):
    return [
        (p.sdn_count, [r.seed for r in p.runs], p.times) for p in result.points
    ]


class TestSerialParallelEquality:
    def test_parallel_matches_serial_on_clique(self):
        serial = run_fraction_sweep(WithdrawalScenario, **SWEEP_KWARGS)
        parallel = run_fraction_sweep(
            WithdrawalScenario, workers=2, **SWEEP_KWARGS
        )
        assert _times(parallel) == _times(serial)
        # full per-run measurements, not just the headline stat
        for sp, pp in zip(serial.points, parallel.points):
            for sr, pr in zip(sp.runs, pp.runs):
                assert sr.measurement.convergence_time == (
                    pr.measurement.convergence_time
                )
                assert sr.measurement.updates_tx == pr.measurement.updates_tx
                assert sr.measurement.updates_rx == pr.measurement.updates_rx

    def test_parallel_stats_identical(self):
        serial = run_fraction_sweep(WithdrawalScenario, **SWEEP_KWARGS)
        parallel = run_fraction_sweep(
            WithdrawalScenario, workers=3, **SWEEP_KWARGS
        )
        for sp, pp in zip(serial.points, parallel.points):
            assert sp.stats == pp.stats

    def test_timing_surfaced_on_result(self):
        result = run_fraction_sweep(WithdrawalScenario, **SWEEP_KWARGS)
        assert result.timing is not None
        assert result.timing.jobs == 9
        assert result.timing.failed == 0
        assert result.timing.workers == 1
        assert result.timing.elapsed > 0


class TestExportMetadata:
    def test_rows_carry_runner_metadata(self):
        result = run_fraction_sweep(
            WithdrawalScenario, n=4, sdn_counts=[0, 2], runs=2, mrai=1.0
        )
        rows = sweep_rows(result)
        assert len(rows) == 4
        for row in rows:
            assert row["wall_time"] > 0
            assert row["worker"] == "serial"
            assert row["cached"] is False
            assert row["attempts"] == 1

    def test_json_carries_timing_and_failures(self):
        result = run_fraction_sweep(
            WithdrawalScenario, n=4, sdn_counts=[0, 2], runs=2, mrai=1.0
        )
        doc = json.loads(sweep_to_json(result))
        assert doc["timing"]["jobs"] == 4
        assert doc["timing"]["cached"] == 0
        assert doc["timing"]["workers"] == 1
        assert doc["failures"] == []

    def test_parallel_worker_metadata(self):
        result = run_fraction_sweep(
            WithdrawalScenario,
            n=4,
            sdn_counts=[0, 2],
            runs=2,
            mrai=1.0,
            workers=2,
        )
        workers = {row["worker"] for row in sweep_rows(result)}
        assert all(w.startswith("pid-") for w in workers)
