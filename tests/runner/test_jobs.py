"""RunSpec digests, picklability, and the worker entry point."""

import functools
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments.common import FailoverScenario, WithdrawalScenario
from repro.runner import RunSpec, SpecError, callable_token, execute_spec
from repro.topology.builders import clique, ring

from .scenarios import RaisingScenario


def make_spec(**overrides):
    base = dict(
        scenario_factory=WithdrawalScenario,
        topology_factory=clique,
        n=4,
        sdn_count=2,
        seed=7,
        mrai=1.0,
    )
    base.update(overrides)
    return RunSpec(**base)


def _digest_in_subprocess(spec):
    return spec.digest()


class TestCallableToken:
    def test_module_level_class(self):
        token = callable_token(WithdrawalScenario)
        assert token == "repro.experiments.common:WithdrawalScenario"

    def test_module_level_function(self):
        assert callable_token(clique) == "repro.topology.builders:clique"

    def test_partial_includes_bound_arguments(self):
        a = callable_token(functools.partial(WithdrawalScenario, origin=2))
        b = callable_token(functools.partial(WithdrawalScenario, origin=3))
        assert a != b
        assert "WithdrawalScenario" in a

    def test_lambda_rejected(self):
        with pytest.raises(SpecError):
            callable_token(lambda n: clique(n))

    def test_local_function_rejected(self):
        def local_factory(n):
            return clique(n)

        with pytest.raises(SpecError):
            callable_token(local_factory)


class TestDigestStability:
    def test_identical_specs_identical_digests(self):
        assert make_spec().digest() == make_spec().digest()

    def test_digest_is_sha256_hex(self):
        digest = make_spec().digest()
        assert len(digest) == 64
        int(digest, 16)  # parses as hex

    def test_every_result_determining_field_changes_digest(self):
        base = make_spec().digest()
        assert make_spec(scenario_factory=FailoverScenario).digest() != base
        assert make_spec(topology_factory=ring).digest() != base
        assert make_spec(n=5).digest() != base
        assert make_spec(sdn_count=1).digest() != base
        assert make_spec(seed=8).digest() != base
        assert make_spec(mrai=2.0).digest() != base
        assert make_spec(recompute_delay=1.0).digest() != base
        assert make_spec(policy_mode="gao_rexford").digest() != base
        assert make_spec(sdn_members=(3, 4)).digest() != base
        assert make_spec(horizon=100.0).digest() != base

    def test_spans_flag_changes_digest(self):
        assert make_spec(spans=True).digest() != make_spec().digest()

    def test_spans_default_keeps_legacy_digest(self):
        # spans=False must hash like a spec that predates the field, so
        # existing caches stay warm after the upgrade.
        spec = make_spec()
        assert "spans" not in spec.describe()
        assert "spans" in make_spec(spans=True).describe()

    def test_label_is_cosmetic(self):
        assert make_spec(label="x").digest() == make_spec(label="y").digest()
        assert make_spec(label="x") == make_spec(label="y")

    def test_member_order_does_not_matter(self):
        assert (
            make_spec(sdn_members=(4, 3)).digest()
            == make_spec(sdn_members=(3, 4)).digest()
        )

    def test_stable_across_processes(self):
        spec = make_spec()
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_digest_in_subprocess, spec).result()
        assert remote == spec.digest()

    def test_partial_factory_digest_stable(self):
        a = make_spec(
            scenario_factory=functools.partial(WithdrawalScenario, origin=1)
        )
        b = make_spec(
            scenario_factory=functools.partial(WithdrawalScenario, origin=1)
        )
        assert a.digest() == b.digest()


class TestPicklability:
    def test_spec_round_trips(self):
        spec = make_spec(
            scenario_factory=functools.partial(WithdrawalScenario, origin=1),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.digest() == spec.digest()

    def test_spec_hashable(self):
        assert len({make_spec(), make_spec(), make_spec(seed=9)}) == 2


class TestExecuteSpec:
    def test_success_record(self):
        record = execute_spec(make_spec())
        assert record.ok
        assert record.measurement.convergence_time > 0
        assert record.digest == make_spec().digest()
        assert record.wall_time > 0
        assert record.worker.startswith("pid-")

    def test_matches_direct_serial_run(self):
        from repro.experiments.common import (
            paper_config,
            run_scenario_once,
            sdn_set_for,
        )

        scenario = WithdrawalScenario()
        topology = scenario.topology(4, clique)
        members = sdn_set_for(topology, 2, scenario.reserved_legacy)
        direct = run_scenario_once(
            scenario, topology, members, paper_config(seed=7, mrai=1.0)
        )
        record = execute_spec(make_spec())
        assert record.measurement.convergence_time == direct.convergence_time
        assert record.measurement.updates_tx == direct.updates_tx

    def test_spans_attached_when_requested(self):
        record = execute_spec(make_spec(spans=True))
        assert record.ok
        assert isinstance(record.spans, list) and record.spans
        # measured results are bit-identical to the span-free run
        plain = execute_spec(make_spec())
        assert (
            record.measurement.convergence_time
            == plain.measurement.convergence_time
        )
        assert record.measurement.updates_tx == plain.measurement.updates_tx

    def test_exception_becomes_failed_record(self):
        record = execute_spec(make_spec(scenario_factory=RaisingScenario))
        assert not record.ok
        assert record.measurement is None
        assert "scenario exploded on purpose" in record.error
