"""ParallelRunner fault tolerance: retries, crashes, timeouts, ordering."""

import functools

import pytest

from repro.runner import ParallelRunner, ProgressSink, CallbackProgress

from .scenarios import CrashScenario, FlakyScenario, HangScenario, RaisingScenario
from .test_jobs import make_spec


class TestSerialFallback:
    def test_serial_marks_worker(self):
        records = ParallelRunner(1).run([make_spec(), make_spec(seed=8)])
        assert all(r.ok for r in records)
        assert all(r.worker == "serial" for r in records)

    def test_serial_soft_failure_retried_then_reported(self):
        runner = ParallelRunner(1, retries=2)
        (record,) = runner.run([make_spec(scenario_factory=RaisingScenario)])
        assert not record.ok
        assert record.attempts == 3
        assert "scenario exploded on purpose" in record.error

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(0)
        with pytest.raises(ValueError):
            ParallelRunner(2, retries=-1)


class TestOrdering:
    def test_records_align_with_specs(self):
        specs = [make_spec(seed=s) for s in (11, 12, 13, 14, 15)]
        records = ParallelRunner(2).run(specs)
        assert [r.digest for r in records] == [s.digest() for s in specs]
        assert all(r.ok for r in records)


class TestCrashRetry:
    def test_crash_retried_then_failed_without_aborting(self):
        # The crasher is last so the good jobs complete first and the
        # broken pools never take innocent bystanders down with them.
        specs = [
            make_spec(seed=21),
            make_spec(seed=22),
            make_spec(scenario_factory=CrashScenario, seed=23),
        ]
        runner = ParallelRunner(2, retries=1)
        records = runner.run(specs)
        assert records[0].ok and records[1].ok
        crash = records[2]
        assert not crash.ok
        assert crash.attempts == 2
        assert "worker process died" in crash.error
        assert runner.last_timing.failed == 1

    def test_crash_first_still_lets_others_finish(self):
        specs = [
            make_spec(scenario_factory=CrashScenario, seed=31),
            make_spec(seed=32),
            make_spec(seed=33),
        ]
        records = ParallelRunner(2, retries=3).run(specs)
        assert not records[0].ok
        assert records[1].ok and records[2].ok


class TestSoftFailureRetry:
    def test_flaky_succeeds_on_second_attempt(self, tmp_path):
        factory = functools.partial(
            FlakyScenario, flag_path=str(tmp_path / "flag")
        )
        (record,) = ParallelRunner(2, retries=1).run(
            [make_spec(scenario_factory=factory)]
        )
        assert record.ok
        assert record.attempts == 2

    def test_exhausted_retries_reported_not_raised(self):
        specs = [
            make_spec(seed=41),
            make_spec(scenario_factory=RaisingScenario, seed=42),
        ]
        records = ParallelRunner(2, retries=1).run(specs)
        assert records[0].ok
        assert not records[1].ok
        assert records[1].attempts == 2
        assert "scenario exploded on purpose" in records[1].error


class TestTimeout:
    def test_hung_worker_killed_and_reported(self):
        spec = make_spec(scenario_factory=HangScenario)
        runner = ParallelRunner(2, timeout=0.5, retries=0)
        (record,) = runner.run([spec])
        assert not record.ok
        assert "timed out" in record.error
        assert record.attempts == 1

    def test_timeout_retry_budget(self):
        spec = make_spec(scenario_factory=HangScenario)
        (record,) = ParallelRunner(2, timeout=0.3, retries=1).run([spec])
        assert not record.ok
        assert record.attempts == 2

    def test_fast_jobs_unaffected_by_generous_timeout(self):
        records = ParallelRunner(2, timeout=60.0).run(
            [make_spec(seed=51), make_spec(seed=52)]
        )
        assert all(r.ok for r in records)


class TestProgress:
    def test_callback_sink_sees_every_event(self):
        events = []
        runner = ParallelRunner(
            1, progress=lambda name, payload: events.append(name)
        )
        runner.run([make_spec()])
        assert events[0] == "sweep_started"
        assert events[-1] == "sweep_finished"
        assert "job_started" in events and "job_finished" in events

    def test_log_sink_writes_lines(self, capsys):
        import sys

        from repro.runner import LogProgress

        runner = ParallelRunner(1, progress=LogProgress(stream=sys.stderr))
        runner.run([make_spec()])
        err = capsys.readouterr().err
        assert "[runner]" in err and "done:" in err

    def test_resolve_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ParallelRunner(1, progress="loud")

    def test_base_sink_is_quiet(self, capsys):
        ParallelRunner(1, progress=ProgressSink()).run([make_spec()])
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""

    def test_callback_payload_carries_records(self):
        seen = {}

        def collect(name, payload):
            seen.setdefault(name, []).append(payload)

        ParallelRunner(1, progress=CallbackProgress(collect)).run([make_spec()])
        (finished,) = seen["job_finished"]
        assert finished["record"].ok
        (done,) = seen["sweep_finished"]
        assert done["timing"].jobs == 1

    def test_log_lines_carry_pace_and_eta(self, capsys):
        import re
        import sys

        from repro.runner import LogProgress

        specs = [make_spec(seed=s) for s in (61, 62)]
        ParallelRunner(1, progress=LogProgress(stream=sys.stderr)).run(specs)
        err = capsys.readouterr().err
        finished = [line for line in err.splitlines() if "] < " in line]
        assert len(finished) == 2
        assert re.search(r"\[1/2, \d+\.\d\d trials/s, eta \d+s\]", finished[0])
        assert "[2/2" in finished[1]

    def test_tee_fans_out_to_every_sink(self):
        from repro.runner import TeeProgress

        seen_a, seen_b = [], []
        tee = TeeProgress(
            CallbackProgress(lambda name, _: seen_a.append(name)),
            None,  # None sinks are dropped, not called
            CallbackProgress(lambda name, _: seen_b.append(name)),
        )
        ParallelRunner(1, progress=tee).run([make_spec()])
        assert seen_a == seen_b
        assert seen_a[0] == "sweep_started"
        assert seen_a[-1] == "sweep_finished"
