"""LogProgress pace/ETA guards, pinned against a fake clock.

The pace suffix must degrade rather than lie: a tick inside clock
granularity of the sweep start, or a sweep answered entirely from
cache, shows bare ``k/total`` instead of a rate extrapolated from ~0
elapsed seconds.
"""

import io

from repro.runner.jobs import RunRecord
from repro.runner.progress import LogProgress

from .test_jobs import make_spec


class FakeClock:
    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def __call__(self) -> float:
        return self.value


def record(*, cached: bool = False, ok: bool = True) -> RunRecord:
    return RunRecord(
        digest="d" * 64, ok=ok, cached=cached,
        wall_time=0.5, worker="w0",
        error="" if ok else "boom",
    )


def run_lines(events):
    """Drive a LogProgress through scripted (advance, record) events."""
    stream = io.StringIO()
    clock = FakeClock()
    progress = LogProgress(stream, clock=clock)
    total = len(events)
    cached = sum(1 for _, r in events if r.cached)
    progress.sweep_started(total, cached, 1)
    spec = make_spec()
    for index, (advance, rec) in enumerate(events):
        clock.value += advance
        progress.job_finished(index, spec, rec)
    return stream.getvalue().splitlines()


class TestPaceGuards:
    def test_normal_sweep_rate_and_eta(self):
        lines = run_lines([(2.0, record()), (2.0, record())])
        assert lines[1].endswith("[1/2, 0.50 trials/s, eta 2s]")
        # final line: remaining == 0, so no eta suffix at all
        assert lines[2].endswith("[2/2, 0.50 trials/s]")
        assert "eta" not in lines[2]

    def test_zero_elapsed_tick_shows_bare_progress(self):
        # executed trial lands within clock granularity of the start:
        # no million-trials/s extrapolation, just k/total
        lines = run_lines([(0.0, record()), (2.0, record())])
        assert lines[1].endswith("[1/2]")
        assert "trials/s" not in lines[1]
        assert "trials/s" in lines[2]  # rate appears once time has passed

    def test_all_cache_hits_never_show_rate(self):
        lines = run_lines(
            [(0.0, record(cached=True)), (0.0, record(cached=True))]
        )
        assert lines[1].endswith("cached [1/2]")
        assert lines[2].endswith("cached [2/2]")
        assert all("trials/s" not in line for line in lines)
        assert all("eta" not in line for line in lines)

    def test_cache_hits_then_executed_trial_uses_executed_rate(self):
        lines = run_lines(
            [(0.0, record(cached=True)), (4.0, record())]
        )
        # 1 executed trial over 4s -> 0.25 trials/s; nothing remaining
        assert lines[2].endswith("[2/2, 0.25 trials/s]")

    def test_failed_trial_still_counts_toward_pace(self):
        lines = run_lines([(2.0, record(ok=False))])
        assert "FAILED" in lines[1]
        assert lines[1].endswith("[1/1, 0.50 trials/s]")

    def test_wall_clock_default_still_works(self):
        stream = io.StringIO()
        progress = LogProgress(stream)
        progress.sweep_started(1, 0, 1)
        progress.job_finished(0, make_spec(), record())
        assert "[1/1" in stream.getvalue()
