"""Per-job resource accounting and sampler attachment on execute_spec."""

import json
import time

import pytest

from repro.runner import ParallelRunner, execute_spec
from repro.runner.cache import ResultCache
from repro.runner.jobs import ResourceAccounting

from .test_jobs import make_spec

RESOURCE_KEYS = {
    "gc_collections",
    "gc_pause_s",
    "cpu_user_s",
    "cpu_sys_s",
    "max_rss_kb",
    "events_processed",
    "events_per_s",
}


class TestResourceAccounting:
    def test_finish_shape_and_monotonicity(self):
        accounting = ResourceAccounting()
        t0 = time.perf_counter()
        sum(i * i for i in range(200_000))
        wall = time.perf_counter() - t0
        out = accounting.finish(wall_time=wall, events_processed=1234)
        assert set(out) == RESOURCE_KEYS
        assert out["cpu_user_s"] >= 0.0
        assert out["cpu_sys_s"] >= 0.0
        assert out["max_rss_kb"] > 0
        assert out["events_processed"] == 1234
        assert out["events_per_s"] == pytest.approx(1234 / wall, rel=0.01)

    def test_gc_callback_removed_after_finish(self):
        import gc

        before = len(gc.callbacks)
        accounting = ResourceAccounting()
        assert len(gc.callbacks) == before + 1
        accounting.finish(wall_time=0.1)
        assert len(gc.callbacks) == before

    def test_no_events_omits_rate(self):
        out = ResourceAccounting().finish(wall_time=0.1)
        assert "events_processed" not in out
        assert "events_per_s" not in out


class TestExecuteSpecResources:
    def test_record_carries_resources(self):
        record = execute_spec(make_spec())
        assert record.ok
        assert record.resources is not None
        assert set(record.resources) == RESOURCE_KEYS
        assert record.resources["events_processed"] > 0
        assert record.resources["events_per_s"] > 0
        # resources must be JSON round-trippable (cache + registry)
        assert json.loads(json.dumps(record.resources)) == record.resources

    def test_no_sampler_by_default(self):
        record = execute_spec(make_spec())
        assert record.sample_stacks is None

    def test_sampler_attaches_stacks(self):
        # 4-AS trials finish in milliseconds; sample fast to be sure at
        # least the slowest trials catch a frame.  An empty dict is
        # still a pass — presence of the field is what is asserted.
        record = execute_spec(make_spec(n=8, sample_hz=900.0))
        assert record.ok
        assert record.sample_stacks is not None
        for stack, count in record.sample_stacks.items():
            assert isinstance(stack, str) and isinstance(count, int)

    def test_sample_hz_changes_digest_only_when_set(self):
        base = make_spec()
        explicit_off = make_spec(sample_hz=0.0)
        sampled = make_spec(sample_hz=97.0)
        assert base.digest() == explicit_off.digest()
        assert base.digest() != sampled.digest()

    def test_resources_do_not_change_measurement(self):
        a = execute_spec(make_spec())
        b = execute_spec(make_spec(sample_hz=500.0))
        assert a.measurement_dict() == b.measurement_dict()


class TestCacheRoundTrip:
    def test_resources_and_stacks_survive_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec(sample_hz=900.0)
        record = execute_spec(spec)
        cache.put(spec, record)
        hit = cache.get(spec)
        assert hit is not None and hit.cached
        assert hit.resources == record.resources
        assert hit.sample_stacks == record.sample_stacks

    def test_old_cache_entries_without_resources_still_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        record = execute_spec(spec)
        cache.put(spec, record)
        path = cache._path(spec.digest())
        payload = json.loads(path.read_text())
        payload.pop("resources", None)
        payload.pop("sample_stacks", None)
        path.write_text(json.dumps(payload))
        hit = cache.get(spec)
        assert hit is not None
        assert hit.resources is None
        assert hit.sample_stacks is None


class TestRunnerPassThrough:
    def test_parallel_runner_keeps_resources(self):
        specs = [make_spec(seed=s) for s in (1, 2)]
        records = ParallelRunner(2).run(specs)
        assert all(r.resources is not None for r in records)
