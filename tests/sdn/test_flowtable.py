"""Unit + property tests for the flow table."""

from hypothesis import given, strategies as st

from repro.net.addr import IPv4Address, Prefix
from repro.sdn.flowtable import ActionType, FlowAction, FlowRule, FlowTable


def rule(prefix_text, priority=0, cookie=""):
    return FlowRule(
        match=Prefix.parse(prefix_text),
        action=FlowAction.drop(),
        priority=priority,
        cookie=cookie,
    )


class TestMatching:
    def test_empty_table_misses(self):
        assert FlowTable().lookup(IPv4Address.parse("10.0.0.1")) is None

    def test_basic_match(self):
        table = FlowTable()
        table.install(rule("10.0.0.0/24"))
        assert table.lookup(IPv4Address.parse("10.0.0.9")) is not None
        assert table.lookup(IPv4Address.parse("10.0.1.9")) is None

    def test_higher_priority_wins(self):
        table = FlowTable()
        low = rule("10.0.0.0/8", priority=1)
        high = rule("10.0.0.0/8", priority=9)
        table.install(low)
        table.install(high)
        assert table.lookup(IPv4Address.parse("10.1.1.1")) is high

    def test_priority_tie_breaks_on_length(self):
        table = FlowTable()
        coarse = rule("10.0.0.0/8", priority=5)
        fine = rule("10.0.0.0/24", priority=5)
        table.install(coarse)
        table.install(fine)
        assert table.lookup(IPv4Address.parse("10.0.0.1")) is fine
        assert table.lookup(IPv4Address.parse("10.5.0.1")) is coarse

    def test_lookup_counts_packets(self):
        table = FlowTable()
        entry = rule("10.0.0.0/8")
        table.install(entry)
        table.lookup(IPv4Address.parse("10.0.0.1"))
        table.lookup(IPv4Address.parse("10.0.0.2"))
        assert entry.packets == 2


class TestMutation:
    def test_install_replaces_same_match_and_priority(self):
        table = FlowTable()
        table.install(rule("10.0.0.0/24", priority=5))
        table.install(rule("10.0.0.0/24", priority=5))
        assert len(table) == 1

    def test_different_priority_coexists(self):
        table = FlowTable()
        table.install(rule("10.0.0.0/24", priority=1))
        table.install(rule("10.0.0.0/24", priority=2))
        assert len(table) == 2

    def test_remove_by_match(self):
        table = FlowTable()
        table.install(rule("10.0.0.0/24", priority=1))
        table.install(rule("10.0.0.0/24", priority=2))
        assert table.remove(Prefix.parse("10.0.0.0/24")) == 2

    def test_remove_by_match_and_priority(self):
        table = FlowTable()
        table.install(rule("10.0.0.0/24", priority=1))
        table.install(rule("10.0.0.0/24", priority=2))
        assert table.remove(Prefix.parse("10.0.0.0/24"), priority=1) == 1
        assert len(table) == 1

    def test_remove_by_cookie(self):
        table = FlowTable()
        table.install(rule("10.0.0.0/24", cookie="idr:x"))
        table.install(rule("10.0.1.0/24", cookie="static"))
        assert table.remove_by_cookie("idr:x") == 1
        assert len(table) == 1

    def test_version_bumps(self):
        table = FlowTable()
        v0 = table.version
        table.install(rule("10.0.0.0/24"))
        assert table.version > v0

    def test_remove_missing_is_zero_and_quiet(self):
        table = FlowTable()
        assert table.remove(Prefix.parse("10.0.0.0/24")) == 0


# property: highest-priority matching rule always returned
prefixes = st.tuples(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=32),
).map(lambda t: Prefix.of(IPv4Address(t[0]), t[1]))

rules = st.builds(
    lambda p, pr: FlowRule(match=p, action=FlowAction.drop(), priority=pr),
    prefixes,
    st.integers(min_value=0, max_value=40),
)


@given(st.lists(rules, min_size=1, max_size=25),
       st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_lookup_matches_bruteforce(rule_list, addr_value):
    table = FlowTable()
    for r in rule_list:
        table.install(r)
    address = IPv4Address(addr_value)
    surviving = list(table)
    matching = [r for r in surviving if address in r.match]
    hit = table.lookup(address)
    if not matching:
        assert hit is None
    else:
        best = max(matching, key=lambda r: (r.priority, r.match.length))
        assert hit is not None
        assert (hit.priority, hit.match.length) == (best.priority, best.match.length)
