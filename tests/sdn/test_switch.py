"""Unit tests for the SDN switch: FlowMods, relaying, PortStatus."""

import pytest

from repro.bgp.messages import BGPKeepalive
from repro.net.addr import IPv4Address, Prefix
from repro.net.messages import Packet
from repro.net.node import Node
from repro.sdn.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowRemove,
    PeeringStatus,
    PortStatus,
)
from repro.sdn.switch import SDNSwitch


class Sink(Node):
    def __init__(self, sim, trace, name):
        super().__init__(sim, trace, name)
        self.inbox = []

    def handle_message(self, link, message):
        self.inbox.append(message)


def build(net):
    """switch with controller stub, one peer, one relay target."""
    switch = net.add_node(SDNSwitch(net.sim, net.trace, "sw", asn=10))
    controller = net.add_node(Sink(net.sim, net.trace, "ctl"))
    external = net.add_node(Sink(net.sim, net.trace, "ext"))
    speaker = net.add_node(Sink(net.sim, net.trace, "spk"))
    ctl_link = net.add_link(switch, controller, kind="control")
    phys = net.add_link(switch, external, kind="phys")
    relay = net.add_link(switch, speaker, kind="relay")
    switch.set_control_link(ctl_link)
    switch.add_border_relay(phys, relay)
    return switch, controller, external, speaker, ctl_link, phys, relay


class TestFlowMods:
    def test_flow_mod_installs_rule(self, net):
        switch, controller, external, *_ , phys, relay = build(net)
        mod = FlowMod(
            match=Prefix.parse("10.0.0.0/24"),
            action_type="output",
            out_link_name=phys.name,
            priority=24,
        )
        switch._handle_control(mod)
        assert len(switch.flow_table) == 1
        assert switch.flow_mods_applied == 1

    def test_flow_mod_unknown_port_is_logged_not_fatal(self, net):
        switch, *_ = build(net)
        mod = FlowMod(
            match=Prefix.parse("10.0.0.0/24"),
            action_type="output",
            out_link_name="ghost",
        )
        switch._handle_control(mod)
        assert len(switch.flow_table) == 0
        assert net.trace.count("switch.flowmod.bad_port") == 1

    def test_flow_remove(self, net):
        switch, *_, phys, relay = build(net)
        switch._handle_control(
            FlowMod(match=Prefix.parse("10.0.0.0/24"),
                    action_type="output", out_link_name=phys.name, priority=24)
        )
        switch._handle_control(
            FlowRemove(match=Prefix.parse("10.0.0.0/24"), priority=24)
        )
        assert len(switch.flow_table) == 0

    def test_local_action(self, net):
        switch, *_ = build(net)
        switch._handle_control(
            FlowMod(match=Prefix.parse("10.0.0.0/24"), action_type="local")
        )
        entry = switch.lookup_route(IPv4Address.parse("10.0.0.1"))
        assert entry is not None and entry.link is None

    def test_barrier_round_trip(self, net):
        switch, controller, *_ = build(net)
        ctl = switch.control_link
        ctl.transmit(controller, BarrierRequest(xid=7))
        net.sim.run()
        replies = [m for m in controller.inbox if isinstance(m, BarrierReply)]
        assert replies and replies[0].xid == 7


class TestForwarding:
    def test_flow_table_forwarding(self, net):
        switch, controller, external, *_ , phys, relay = build(net)
        switch._handle_control(
            FlowMod(match=Prefix.parse("10.0.0.0/24"),
                    action_type="output", out_link_name=phys.name, priority=24)
        )
        got = []
        external.handle_local_packet = lambda link, p: got.append(p)
        external.address = IPv4Address.parse("10.0.0.1")
        packet = Packet(
            src=IPv4Address.parse("10.9.0.1"),
            dst=IPv4Address.parse("10.0.0.1"),
            proto="raw",
        )
        switch.forward_packet(packet)
        net.sim.run()
        assert len(got) == 1

    def test_miss_drops_without_packet_in(self, net):
        switch, controller, *_ = build(net)
        packet = Packet(
            src=IPv4Address.parse("10.9.0.1"),
            dst=IPv4Address.parse("10.0.0.1"),
            proto="raw",
        )
        assert switch.forward_packet(packet) is False
        assert switch.packet_ins_sent == 0

    def test_miss_sends_packet_in_when_enabled(self, net):
        switch, controller, *_ = build(net)
        switch.packet_in_enabled = True
        packet = Packet(
            src=IPv4Address.parse("10.9.0.1"),
            dst=IPv4Address.parse("10.0.0.1"),
            proto="raw",
        )
        switch.forward_packet(packet)
        net.sim.run()
        assert switch.packet_ins_sent == 1


class TestBgpRelay:
    def test_phys_to_relay(self, net):
        switch, controller, external, speaker, ctl, phys, relay = build(net)
        phys.transmit(external, BGPKeepalive(sender_asn=99))
        net.sim.run()
        assert any(isinstance(m, BGPKeepalive) for m in speaker.inbox)

    def test_relay_to_phys(self, net):
        switch, controller, external, speaker, ctl, phys, relay = build(net)
        relay.transmit(speaker, BGPKeepalive(sender_asn=10))
        net.sim.run()
        assert any(isinstance(m, BGPKeepalive) for m in external.inbox)

    def test_unmapped_bgp_is_logged(self, net):
        switch, controller, external, speaker, ctl, phys, relay = build(net)
        other = net.add_node(Sink(net.sim, net.trace, "other"))
        stray = net.add_link(switch, other, kind="phys")
        stray.transmit(other, BGPKeepalive(sender_asn=1))
        net.sim.run()
        assert net.trace.count("switch.bgp.unrelayable") == 1

    def test_relay_drops_when_phys_down(self, net):
        switch, controller, external, speaker, ctl, phys, relay = build(net)
        phys.up = False  # silent: no notifications
        relay.transmit(speaker, BGPKeepalive(sender_asn=10))
        net.sim.run()
        assert not external.inbox


class TestStatusReporting:
    def test_port_status_to_controller(self, net):
        switch, controller, external, speaker, ctl, phys, relay = build(net)
        phys.fail()
        net.sim.run()
        statuses = [m for m in controller.inbox if isinstance(m, PortStatus)]
        assert statuses and statuses[0].up is False
        assert statuses[0].peer == "ext"

    def test_peering_status_to_speaker(self, net):
        switch, controller, external, speaker, ctl, phys, relay = build(net)
        phys.fail()
        net.sim.run()
        statuses = [m for m in speaker.inbox if isinstance(m, PeeringStatus)]
        assert statuses and statuses[0].up is False

    def test_restore_reports_up(self, net):
        switch, controller, external, speaker, ctl, phys, relay = build(net)
        phys.fail()
        phys.restore()
        net.sim.run()
        ups = [
            m for m in controller.inbox
            if isinstance(m, PortStatus) and m.up
        ]
        assert ups


class TestValidation:
    def test_bad_asn(self, net):
        with pytest.raises(ValueError):
            SDNSwitch(net.sim, net.trace, "x", asn=-1)

    def test_peering_links_listing(self, net):
        switch, controller, external, speaker, ctl, phys, relay = build(net)
        assert switch.peering_links() == [phys]
