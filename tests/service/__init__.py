"""Tests for the repro.service control plane."""
