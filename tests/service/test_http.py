"""HTTP surface of the service: routes, errors, SSE, and the
concurrent-clients acceptance scenario."""

import asyncio
import json
import threading

import pytest

from repro.obs.registry import RunRegistry
from repro.service import (
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    start_service,
)

QUICK_SPEC = {
    "scenario": "withdrawal", "n": 5, "sdn_count": 2,
    "seed": 7, "mrai": 1.0,
}


def serve(tmp_path, body, **overrides):
    """Start a service on an ephemeral port, run ``body(port, app,
    loop)`` in a thread (so it can use the blocking client), tear down."""
    config = ServiceConfig(
        host="127.0.0.1",
        port=0,
        cache_dir=str(tmp_path / "cache"),
        registry_path=str(tmp_path / "runs.sqlite"),
        concurrency=overrides.pop("concurrency", 2),
        max_queue=overrides.pop("max_queue", 16),
        quota=overrides.pop("quota", 8),
    )
    assert not overrides

    async def main():
        server, app = await start_service(config)
        port = server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                None, body, port, app, loop
            )
        finally:
            server.close()
            await server.wait_closed()
            await app.manager.aclose()

    return asyncio.run(main())


def raw_request(port: int, payload: bytes) -> bytes:
    """One raw TCP request/response against the service."""
    import socket

    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestAcceptance:
    def test_concurrent_same_digest_single_execution_and_quota_429(
        self, tmp_path
    ):
        """The issue's end-to-end criterion: two concurrent clients
        submit the same RunSpec digest — exactly one trial executes,
        both receive bit-identical result bytes, the registry records
        the run once — and a submission past the quota limit receives
        429 with Retry-After."""

        def body(port, app, loop):
            payload = {"spec": QUICK_SPEC}
            results = {}
            barrier = threading.Barrier(2)

            def client_thread(name):
                client = ServiceClient(
                    "127.0.0.1", port, client_id=name
                )
                barrier.wait()  # submit as close to simultaneous as we can
                (job,) = client.submit(payload)
                final = client.watch(job["digest"])
                assert final["state"] == "done"
                results[name] = (
                    job["digest"], client.result_bytes(job["digest"])
                )

            threads = [
                threading.Thread(target=client_thread, args=(name,))
                for name in ("alice", "bob")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
                assert not thread.is_alive()

            digest_a, bytes_a = results["alice"]
            digest_b, bytes_b = results["bob"]
            assert digest_a == digest_b
            # bit-identical result bodies for both clients
            assert bytes_a == bytes_b
            record = json.loads(bytes_a)
            assert record["ok"] is True

            # exactly one execution: one job, one job_started event
            job = app.manager.jobs[digest_a]
            starts = [
                e for e in job.events if e["event"] == "job_started"
            ]
            assert len(starts) == 1
            assert job.clients == {"alice", "bob"}

            # the run appears once in the registry
            client = ServiceClient("127.0.0.1", port, client_id="check")
            rows = client.runs(digest=digest_a)
            assert len(rows) == 1
            assert rows[0]["ok"] is True

            # a submission past the quota limit: 429 + Retry-After
            greedy = ServiceClient("127.0.0.1", port, client_id="greedy")
            with pytest.raises(ServiceClientError) as excinfo:
                greedy.submit(
                    {
                        "grid": {
                            "scenario": "withdrawal", "n": 5,
                            "sdn_counts": [0, 1, 2], "runs": 1,
                            "mrai": 1.0,
                        }
                    }
                )
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1.0

        serve(tmp_path, body, quota=2)


class TestRoutes:
    def test_submit_watch_result_dashboard(self, tmp_path):
        def body(port, app, loop):
            client = ServiceClient("127.0.0.1", port, client_id="t")
            assert client.healthz()["ok"] is True

            (job,) = client.submit({"spec": QUICK_SPEC})
            digest = job["digest"]

            events = []
            final = client.watch(
                digest, on_event=lambda n, p: events.append(n)
            )
            assert final["state"] == "done"
            assert events == [
                "sweep_started", "job_started", "job_finished",
                "sweep_finished", "done",
            ]

            result = client.result(digest)
            assert result["ok"] and result["convergence_time"] > 0

            status = client.status(digest)
            assert status["state"] == "done"
            assert status["record"]["ok"] is True

            # resubmission dedups instantly (same job, no new execution)
            (again,) = client.submit({"spec": QUICK_SPEC})
            assert again["state"] == "done"

            html = client.dashboard()
            assert html.startswith("<!DOCTYPE html>")
            assert "WithdrawalScenario" in html  # the recorded scenario

            jobs = client.jobs()
            assert jobs["stats"]["jobs"] == 1

        serve(tmp_path, body)

    def test_sse_late_subscriber_replays_history(self, tmp_path):
        def body(port, app, loop):
            client = ServiceClient("127.0.0.1", port, client_id="t")
            (job,) = client.submit({"spec": QUICK_SPEC})
            client.watch(job["digest"])
            # job finished; a late watcher still sees the whole story
            names = [n for n, _ in client.events(job["digest"])]
            assert names[0] == "sweep_started"
            assert names[-1] == "done"

        serve(tmp_path, body)

    def test_sse_disconnect_does_not_stall_job(self, tmp_path):
        """A client that opens the event stream and vanishes must not
        prevent the job from completing (satellite: SSE bridge)."""

        def body(port, app, loop):
            import socket

            client = ServiceClient("127.0.0.1", port, client_id="t")
            (job,) = client.submit({"spec": QUICK_SPEC})
            digest = job["digest"]

            # open the SSE stream raw, read a little, hang up mid-run
            sock = socket.create_connection(("127.0.0.1", port), timeout=30)
            sock.sendall(
                f"GET /api/jobs/{digest}/events HTTP/1.1\r\n"
                f"Host: x\r\n\r\n".encode()
            )
            sock.recv(64)
            sock.close()

            final = client.watch(digest)
            assert final["state"] == "done"
            assert final["record"]["ok"] is True

        serve(tmp_path, body)

    def test_cancel_endpoint(self, tmp_path):
        def body(port, app, loop):
            client = ServiceClient("127.0.0.1", port, client_id="t")
            # concurrency 1: second job queues behind the first
            (first,) = client.submit(
                {"spec": {**QUICK_SPEC, "seed": 1}}
            )
            (queued,) = client.submit(
                {"spec": {**QUICK_SPEC, "seed": 2}}
            )
            # a queued job cancels instantly; one that already started
            # stays "running" until its trial lands (or even "done" if
            # it finished before the cancel arrived)
            cancelled = client.cancel(queued["digest"])
            assert cancelled["state"] in ("cancelled", "running", "done")
            final = client.watch(queued["digest"])
            assert final["state"] in ("cancelled", "done")
            if final["state"] == "cancelled":
                assert final["record"]["cancelled"] is True
            # the other job is unaffected
            assert client.watch(first["digest"])["state"] == "done"

        serve(tmp_path, body, concurrency=1)

    def test_registry_endpoints(self, tmp_path):
        def body(port, app, loop):
            client = ServiceClient("127.0.0.1", port, client_id="t")
            (job,) = client.submit({"spec": QUICK_SPEC})
            client.watch(job["digest"])
            rows = client.runs()
            assert len(rows) == 1
            run_id = rows[0]["run_id"]
            row = client._json("GET", f"/api/runs/{run_id}")
            assert row["spec_digest"] == job["digest"]

        serve(tmp_path, body)

    def test_run_anatomy_endpoint(self, tmp_path):
        from repro.obs.anatomy import check_anatomy

        def body(port, app, loop):
            client = ServiceClient("127.0.0.1", port, client_id="t")
            # a traced run: the registry derives and stores anatomy
            (job,) = client.submit({"spec": {**QUICK_SPEC, "spans": True}})
            client.watch(job["digest"])
            (traced_row,) = client.runs()
            run_id = traced_row["run_id"]
            payload = client._json("GET", f"/api/runs/{run_id}/anatomy")
            assert payload["run_id"] == run_id
            anatomy = payload["anatomy"]
            assert anatomy["nodes"]
            assert check_anatomy(anatomy) == []

            # a span-free run carries no attribution: explicit 404
            (job2,) = client.submit(
                {"spec": {**QUICK_SPEC, "seed": 8}}
            )
            client.watch(job2["digest"])
            bare = next(
                row for row in client.runs()
                if row["spec_digest"] == job2["digest"]
            )
            with pytest.raises(ServiceClientError) as excinfo:
                client._json(
                    "GET", f"/api/runs/{bare['run_id']}/anatomy"
                )
            assert "404" in str(excinfo.value)

        serve(tmp_path, body)

    def test_registry_persists_after_service(self, tmp_path):
        def body(port, app, loop):
            client = ServiceClient("127.0.0.1", port, client_id="t")
            (job,) = client.submit({"spec": QUICK_SPEC})
            client.watch(job["digest"])
            return job["digest"]

        digest = serve(tmp_path, body)
        with RunRegistry(str(tmp_path / "runs.sqlite")) as registry:
            rows = registry.runs(digest=digest)
            assert len(rows) == 1 and rows[0].ok


class TestErrors:
    def test_bad_payload_is_clean_400_with_details(self, tmp_path):
        def body(port, app, loop):
            client = ServiceClient("127.0.0.1", port, client_id="t")
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(
                    {"spec": {"scenario": "nope", "n": 1, "junk": True}}
                )
            assert excinfo.value.status == 400
            detail = "\n".join(excinfo.value.detail)
            assert "unknown field 'junk'" in detail
            assert "field 'scenario'" in detail

        serve(tmp_path, body)

    def test_malformed_json_is_400(self, tmp_path):
        def body(port, app, loop):
            response = raw_request(
                port,
                b"POST /api/jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 9\r\n\r\n{not json",
            )
            assert b"400 Bad Request" in response
            assert b"not valid JSON" in response

        serve(tmp_path, body)

    def test_unknown_routes_and_methods(self, tmp_path):
        def body(port, app, loop):
            assert b"404" in raw_request(
                port, b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            assert b"405" in raw_request(
                port, b"PUT /api/jobs HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            assert b"404" in raw_request(
                port,
                b"GET /api/jobs/deadbeef HTTP/1.1\r\nHost: x\r\n\r\n",
            )

        serve(tmp_path, body)

    def test_result_before_completion_is_409(self, tmp_path):
        def body(port, app, loop):
            client = ServiceClient("127.0.0.1", port, client_id="t")
            (first,) = client.submit({"spec": {**QUICK_SPEC, "seed": 1}})
            (queued,) = client.submit({"spec": {**QUICK_SPEC, "seed": 2}})
            # the queued job cannot have a result yet
            if queued["state"] in ("queued", "running"):
                with pytest.raises(ServiceClientError) as excinfo:
                    client.result(queued["digest"])
                assert excinfo.value.status == 409
            client.watch(first["digest"])
            client.watch(queued["digest"])

        serve(tmp_path, body, concurrency=1)

    def test_oversized_body_is_413(self, tmp_path):
        def body(port, app, loop):
            huge = 10_000_000
            response = raw_request(
                port,
                b"POST /api/jobs HTTP/1.1\r\nHost: x\r\n"
                + f"Content-Length: {huge}\r\n\r\n".encode(),
            )
            assert b"413" in response

        serve(tmp_path, body)


def http_get(port: int, path: str):
    """One raw GET, split into (status_line, headers, body text)."""
    response = raw_request(
        port, f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
    )
    head, _, body = response.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").splitlines()
    return lines[0], lines[1:], body.decode("utf-8")


class TestTelemetryEndpoints:
    def test_metrics_exposition_mid_service(self, tmp_path):
        """Scrape /metrics after real traffic: request counters,
        latency histograms, and manager gauges must all parse with the
        stdlib parser the CI smoke harness uses."""
        from repro.obs.runtime import CONTENT_TYPE, parse_prometheus

        def body(port, app, loop):
            client = ServiceClient("127.0.0.1", port, client_id="t")
            (job,) = client.submit({"spec": QUICK_SPEC})
            client.watch(job["digest"])
            raw_request(port, b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")

            status, headers, text = http_get(port, "/metrics")
            assert " 200 " in status
            assert any(
                h.lower() == f"content-type: {CONTENT_TYPE}"
                for h in headers
            )
            scrape = parse_prometheus(text)

            assert scrape.value("repro_service_jobs_tracked") == 1
            assert scrape.value("repro_service_jobs_in_flight") == 0
            assert scrape.value(
                "repro_service_requests", route="/api/jobs", method="POST"
            ) >= 1
            assert scrape.value(
                "repro_service_errors", route="/nope", status="404"
            ) == 1
            assert scrape.value(
                "repro_service_request_seconds_count", route="/api/jobs"
            ) >= 1
            assert scrape.value("repro_service_cache_entries") == 1
            assert scrape.value("repro_service_uptime_seconds") > 0
            # execution-strategy gauges: intern pools are warm after a
            # run, link coalescing is exported even when it never fired
            assert scrape.value("repro_intern_as_paths") > 0
            assert scrape.value("repro_intern_as_path_hits") >= 0
            assert scrape.value(
                "repro_service_link_coalesced_total"
            ) >= 0
            assert (
                scrape.types["repro_service_request_seconds"] == "histogram"
            )

            # a second scrape observes the first: the exposition route
            # meters itself like any other
            _, _, text2 = http_get(port, "/metrics")
            assert parse_prometheus(text2).value(
                "repro_service_requests", route="/metrics", method="GET"
            ) >= 1

        serve(tmp_path, body)

    def test_status_ready_and_not_ready(self, tmp_path):
        def body(port, app, loop):
            status, _, text = http_get(port, "/api/status")
            assert " 200 " in status
            payload = json.loads(text)
            assert payload["live"] is True
            assert payload["ready"] is True
            assert payload["reasons"] == []
            assert payload["uptime_s"] >= 0
            assert payload["telemetry"]["queued"] == 0
            assert "cache" in payload

            # readiness is distinct from liveness: with the worker pool
            # gone the service still answers, but with a 503 and a
            # machine-readable reason
            workers = app.manager._workers[:]
            app.manager._workers.clear()
            try:
                status, _, text = http_get(port, "/api/status")
            finally:
                app.manager._workers.extend(workers)
            assert " 503 " in status
            payload = json.loads(text)
            assert payload["live"] is True
            assert payload["ready"] is False
            assert payload["reasons"] == ["workers not started"]

        serve(tmp_path, body)

    def test_status_reports_drops_after_job(self, tmp_path):
        def body(port, app, loop):
            client = ServiceClient("127.0.0.1", port, client_id="t")
            (job,) = client.submit({"spec": QUICK_SPEC})
            client.watch(job["digest"])
            _, _, text = http_get(port, "/api/status")
            telemetry = json.loads(text)["telemetry"]
            assert telemetry["jobs"] == 1
            assert telemetry["dropped_frames"] == 0
            assert telemetry["trace_dropped_records"] == 0
            assert telemetry["rejected_quota"] == 0

        serve(tmp_path, body)
