"""JobManager: dedup, quotas, backpressure, cancellation, recording."""

import asyncio

import pytest

from repro.config import runspec_from_json
from repro.obs.registry import RunRegistry
from repro.runner import ParallelRunner, ResultCache
from repro.service.manager import (
    JobManager,
    QueueFull,
    QuotaExceeded,
)

BASE = {"scenario": "withdrawal", "n": 5, "sdn_count": 2, "mrai": 1.0}


def spec_for(seed: int = 7, **overrides):
    return runspec_from_json({**BASE, "seed": seed, **overrides})


def run(coro):
    return asyncio.run(coro)


async def manager_session(body, **kwargs):
    kwargs.setdefault("concurrency", 1)
    manager = JobManager(**kwargs)
    manager.start()
    try:
        return await body(manager)
    finally:
        await manager.aclose()


class TestExecution:
    def test_submit_executes_and_finishes(self):
        async def body(manager):
            (job,) = manager.submit_many([spec_for()], "alice")
            await asyncio.wait_for(job.done.wait(), 60)
            return job

        job = run(manager_session(body))
        assert job.state == "done"
        assert job.record.ok
        assert job.record.measurement.convergence_time > 0
        assert [e["event"] for e in job.events] == [
            "sweep_started", "job_started", "job_finished", "sweep_finished",
        ]

    def test_concurrent_same_digest_executes_once(self):
        async def body(manager):
            spec = spec_for()
            (a,) = manager.submit_many([spec], "alice")
            (b,) = manager.submit_many([spec], "bob")
            assert a is b
            assert a.clients == {"alice", "bob"}
            await asyncio.wait_for(a.done.wait(), 60)
            return a

        job = run(manager_session(body))
        starts = [e for e in job.events if e["event"] == "job_started"]
        assert len(starts) == 1

    def test_failed_job_reaches_failed_state(self):
        async def body(manager):
            # sdn_members outside the topology raise inside the trial
            spec = spec_for(seed=3)
            object.__setattr__(spec, "sdn_members", (999,))
            (job,) = manager.submit_many([spec], "alice")
            await asyncio.wait_for(job.done.wait(), 60)
            return job

        job = run(manager_session(body))
        assert job.state == "failed"
        assert not job.record.ok
        assert job.record.error


class TestDedup:
    def test_cache_hit_is_immediately_done(self, tmp_path):
        spec = spec_for()
        cache = ResultCache(tmp_path / "cache")
        baseline = ParallelRunner(1, cache=cache).run([spec])[0]
        assert baseline.ok

        async def body(manager):
            (job,) = manager.submit_many([spec], "alice")
            return job

        job = run(manager_session(body, cache=cache))
        assert job.state == "done"
        assert job.from_cache
        assert job.record.cached
        assert (
            job.record.measurement.convergence_time
            == baseline.measurement.convergence_time
        )

    def test_registry_hit_is_immediately_done(self, tmp_path):
        spec = spec_for()
        registry_path = str(tmp_path / "runs.sqlite")
        runner = ParallelRunner(1, registry=registry_path)
        baseline = runner.run([spec])[0]
        runner.registry_sink.registry.close()
        assert baseline.ok

        async def body(manager):
            (job,) = manager.submit_many([spec], "alice")
            return job

        job = run(manager_session(body, registry_path=registry_path))
        assert job.state == "done"
        assert job.from_cache
        assert (
            job.record.measurement.convergence_time
            == baseline.measurement.convergence_time
        )

    def test_done_job_serves_later_submissions(self):
        async def body(manager):
            spec = spec_for()
            (first,) = manager.submit_many([spec], "alice")
            await asyncio.wait_for(first.done.wait(), 60)
            (second,) = manager.submit_many([spec], "bob")
            assert second is first
            return first

        job = run(manager_session(body))
        assert job.clients == {"alice", "bob"}


class TestBackpressure:
    def test_quota_exceeded_rejects_whole_batch(self):
        async def body(manager):
            with pytest.raises(QuotaExceeded) as excinfo:
                manager.submit_many(
                    [spec_for(seed=s) for s in range(3)], "alice"
                )
            assert excinfo.value.retry_after >= 1.0
            assert manager.jobs == {}  # nothing admitted

        run(manager_session(body, quota=2))

    def test_queue_full_rejects(self):
        async def body():
            # workers never started: nothing drains the queue
            manager = JobManager(concurrency=1, max_queue=2, quota=10)
            with pytest.raises(QueueFull) as excinfo:
                manager.submit_many(
                    [spec_for(seed=s) for s in range(3)], "alice"
                )
            assert excinfo.value.retry_after >= 1.0
            assert manager.jobs == {}
            await manager.aclose()

        run(body())

    def test_attaching_counts_against_quota(self):
        async def body(manager):
            spec = spec_for()
            manager.submit_many([spec], "alice")
            # bob attaches to alice's active job: that is bob's quota
            manager.submit_many([spec], "bob")
            with pytest.raises(QuotaExceeded):
                manager.submit_many([spec_for(seed=99)], "bob")
            job = manager.jobs[spec.digest()]
            await asyncio.wait_for(job.done.wait(), 60)

        run(manager_session(body, quota=1))

    def test_distinct_clients_have_distinct_quotas(self):
        async def body(manager):
            jobs_a = manager.submit_many([spec_for(seed=1)], "alice")
            jobs_b = manager.submit_many([spec_for(seed=2)], "bob")
            for job in jobs_a + jobs_b:
                await asyncio.wait_for(job.done.wait(), 60)

        run(manager_session(body, quota=1, concurrency=2))


class TestCancel:
    def test_cancel_queued_job(self):
        async def body(manager):
            # concurrency 1: the second submission waits behind the first
            (first,) = manager.submit_many([spec_for(seed=1)], "alice")
            (queued,) = manager.submit_many([spec_for(seed=2)], "alice")
            manager.cancel(queued.digest)
            assert queued.state == "cancelled"
            assert queued.record.cancelled
            await asyncio.wait_for(first.done.wait(), 60)
            await asyncio.wait_for(queued.done.wait(), 60)
            return first, queued

        first, queued = run(manager_session(body))
        assert first.state == "done"
        assert first.record.ok  # the running job was unaffected

    def test_cancel_terminal_job_is_noop(self):
        async def body(manager):
            (job,) = manager.submit_many([spec_for()], "alice")
            await asyncio.wait_for(job.done.wait(), 60)
            manager.cancel(job.digest)
            return job

        job = run(manager_session(body))
        assert job.state == "done"
        assert job.record.ok

    def test_cancel_unknown_digest_raises(self):
        async def body(manager):
            with pytest.raises(KeyError):
                manager.cancel("f" * 64)

        run(manager_session(body))


class TestRecording:
    def test_completed_run_lands_in_registry(self, tmp_path):
        registry_path = str(tmp_path / "runs.sqlite")

        async def body(manager):
            (job,) = manager.submit_many([spec_for()], "alice")
            await asyncio.wait_for(job.done.wait(), 60)
            return job

        job = run(manager_session(body, registry_path=registry_path))
        assert job.state == "done"
        with RunRegistry(registry_path) as registry:
            rows = registry.runs(digest=job.digest)
            assert len(rows) == 1
            assert rows[0].ok
            assert rows[0].measurement is not None
