"""Black-box smoke: ``repro serve`` as a real subprocess.

This is what the CI service-smoke job runs: start the service on an
ephemeral port, submit a quick-mode fig2 spec over HTTP, watch it to
completion via SSE, fetch the dashboard, and assert the registry
recorded the run.  Set ``REPRO_SMOKE_ARTIFACTS=<dir>`` to keep the
fetched dashboard HTML (CI uploads it).
"""

import os
import re
import subprocess
import sys
import threading
import time

import pytest

from repro.obs.registry import RunRegistry
from repro.service import ServiceClient

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: quick-mode fig2 sweep: a 2-point withdrawal grid, one seed each.
FIG2_QUICK = {
    "grid": {
        "scenario": "withdrawal",
        "n": 6,
        "sdn_counts": [0, 3],
        "runs": 1,
        "mrai": 1.0,
    }
}


class ServeProcess:
    """``repro serve --port 0`` wrapper that scrapes the bound port."""

    def __init__(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(SRC)
        env["PYTHONUNBUFFERED"] = "1"
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--cache-dir", str(tmp_path / "cache"),
                "--registry", str(tmp_path / "runs.sqlite"),
                "--concurrency", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.lines = []
        self.port = None
        self._reader = threading.Thread(target=self._read, daemon=True)
        self._reader.start()

    def _read(self):
        for line in self.process.stdout:
            self.lines.append(line.rstrip("\n"))

    def wait_for_port(self, timeout: float = 60.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in self.lines:
                match = re.search(r"serving on http://[^:]+:(\d+)", line)
                if match:
                    self.port = int(match.group(1))
                    return self.port
            if self.process.poll() is not None:
                raise AssertionError(
                    "serve exited before announcing its port:\n"
                    + "\n".join(self.lines)
                )
            time.sleep(0.05)
        raise AssertionError(
            "serve never announced its port:\n" + "\n".join(self.lines)
        )

    def stop(self):
        self.process.terminate()
        try:
            self.process.wait(10)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(10)


@pytest.fixture
def serve_process(tmp_path):
    process = ServeProcess(tmp_path)
    try:
        yield process
    finally:
        process.stop()


def test_serve_smoke(tmp_path, serve_process):
    port = serve_process.wait_for_port()
    client = ServiceClient("127.0.0.1", port, client_id="smoke")

    health = client.healthz()
    assert health["ok"] is True

    jobs = client.submit(FIG2_QUICK)
    assert len(jobs) == 2
    digests = [job["digest"] for job in jobs]

    # watch each job via SSE to completion
    for digest in digests:
        names = []
        final = client.watch(
            digest, on_event=lambda n, p: names.append(n)
        )
        assert final["state"] == "done", final
        assert final["record"]["ok"] is True
        assert "job_finished" in names and names[-1] == "done"

    # results are served and carry the measurement
    for digest in digests:
        result = client.result(digest)
        assert result["ok"] is True
        assert result["convergence_time"] > 0

    # the dashboard renders from the recorded registry
    html = client.dashboard()
    assert html.startswith("<!DOCTYPE html>")
    artifacts = os.environ.get("REPRO_SMOKE_ARTIFACTS")
    if artifacts:
        os.makedirs(artifacts, exist_ok=True)
        with open(os.path.join(artifacts, "dashboard.html"), "w") as fh:
            fh.write(html)

    # the registry recorded each run exactly once (service-side view...)
    for digest in digests:
        rows = client.runs(digest=digest)
        assert len(rows) == 1
        assert rows[0]["ok"] is True

    # ...and on-disk truth agrees after shutdown
    serve_process.stop()
    with RunRegistry(str(tmp_path / "runs.sqlite")) as registry:
        for digest in digests:
            rows = registry.runs(digest=digest)
            assert len(rows) == 1 and rows[0].ok
