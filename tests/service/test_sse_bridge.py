"""The ProgressSink → asyncio bridge behind the service's SSE streams.

Two properties matter: the bridged stream carries the *same ordered
events* the synchronous sinks see, and a slow or vanished consumer
never blocks the sweep (frames drop; execution is unaffected).
"""

import asyncio
import io

from repro.config import runspec_from_json
from repro.runner import (
    AsyncQueueProgress,
    JsonProgress,
    LogProgress,
    ParallelRunner,
)

BASE = {"scenario": "withdrawal", "n": 5, "sdn_count": 2, "mrai": 1.0}


def specs_for(seeds):
    return [runspec_from_json({**BASE, "seed": s}) for s in seeds]


def event_keys(payloads):
    """(event, digest-or-None) sequence — the order-sensitive shape."""
    return [(p["event"], p.get("digest")) for p in payloads]


async def run_bridged(specs, *, queue_size=0, drain=True):
    """Run a sweep in a thread with the bridge attached; return
    (records, received payloads, sink)."""
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
    sink = AsyncQueueProgress(loop, queue)
    runner = ParallelRunner(1, progress=sink)

    received = []

    async def consume():
        while True:
            payload = await queue.get()
            if payload is None:
                return
            received.append(payload)

    consumer = asyncio.create_task(consume()) if drain else None
    records = await loop.run_in_executor(None, runner.run, specs)
    if consumer is not None:
        # Every progress callback was scheduled before the executor
        # future resolved, so the sentinel lands strictly after the
        # real events.
        queue.put_nowait(None)
        await asyncio.wait_for(consumer, 30)
    return records, received, sink


def deterministic(payloads):
    """Event payloads with the wall-clock noise stripped, so two runs
    of the same sweep compare equal."""
    out = []
    for payload in payloads:
        clean = dict(payload)
        if "record" in clean:
            record = dict(clean["record"])
            record.pop("wall_time", None)
            clean["record"] = record
        if "timing" in clean:
            timing = dict(clean["timing"])
            for noisy in (
                "elapsed", "total_job_wall", "max_job_wall",
                "cache_entries", "cache_bytes",
            ):
                timing.pop(noisy, None)
            clean["timing"] = timing
        out.append(clean)
    return out


class TestOrdering:
    def test_bridge_emits_same_ordered_events_as_sync_sinks(self):
        specs = specs_for([1, 2, 3])

        # Reference: the synchronous JSON sink, in-thread.
        sync_events = []
        ParallelRunner(1, progress=JsonProgress(sync_events.append)).run(specs)

        records, bridged, _ = asyncio.run(run_bridged(specs))
        assert all(r.ok for r in records)
        assert event_keys(bridged) == event_keys(sync_events)
        # identical payloads too, once wall-clock noise is stripped
        assert deterministic(bridged) == deterministic(sync_events)

    def test_bridge_matches_log_progress_line_order(self):
        """The SSE stream narrates the sweep in the same order as the
        human-facing log (one start/finish pair per trial, same
        sequence)."""
        specs = specs_for([4, 5])

        stream = io.StringIO()
        ParallelRunner(1, progress=LogProgress(stream)).run(specs)
        log_lines = [
            line for line in stream.getvalue().splitlines()
            if line.startswith("[runner]")
        ]

        _, bridged, _ = asyncio.run(run_bridged(specs))
        names = [p["event"] for p in bridged]
        # log: header, then >/< per trial, then the done line
        assert len(log_lines) == len(names)
        assert names[0] == "sweep_started" and log_lines[0].startswith(
            "[runner] "
        )
        for name, line in zip(names[1:-1], log_lines[1:-1]):
            marker = "[runner] >" if name == "job_started" else "[runner] <"
            assert line.startswith(marker), (name, line)
        assert names[-1] == "sweep_finished"

    def test_per_job_event_pairing(self):
        specs = specs_for([1, 2])
        _, bridged, _ = asyncio.run(run_bridged(specs))
        digests = [spec.digest() for spec in specs]
        starts = [p["digest"] for p in bridged if p["event"] == "job_started"]
        finishes = [
            p["digest"] for p in bridged if p["event"] == "job_finished"
        ]
        assert starts == digests  # serial order preserved
        assert finishes == digests
        for payload in bridged:
            if payload["event"] == "job_finished":
                assert payload["record"]["ok"] is True


class TestNonBlocking:
    def test_full_queue_never_stalls_the_sweep(self):
        """A consumer that never drains (queue size 1) must not block
        the worker thread: the sweep completes and frames are counted
        as dropped."""
        specs = specs_for([1, 2, 3])
        records, received, sink = asyncio.run(
            run_bridged(specs, queue_size=1, drain=False)
        )
        assert all(r.ok for r in records)
        assert sink.dropped > 0
        # 3 trials emit 8 events; a 1-slot queue kept at most 1.

    def test_closed_loop_never_stalls_the_sweep(self):
        """Events emitted after the loop is gone (client vanished, loop
        torn down) are dropped, not raised into the runner."""
        loop = asyncio.new_event_loop()
        queue = asyncio.Queue()
        sink = AsyncQueueProgress(loop, queue)
        loop.close()

        specs = specs_for([1])
        records = ParallelRunner(1, progress=sink).run(specs)
        assert records[0].ok
        assert sink.dropped == 4  # every event of the 1-trial sweep

    def test_drop_callback_observes_losses(self):
        drops = []
        loop = asyncio.new_event_loop()
        sink = AsyncQueueProgress(
            loop, asyncio.Queue(), on_drop=lambda: drops.append(1)
        )
        loop.close()
        ParallelRunner(1, progress=sink).run(specs_for([1]))
        assert len(drops) == sink.dropped > 0
