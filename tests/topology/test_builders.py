"""Unit tests for artificial topology builders."""

import pytest

from repro.bgp.policy import Relationship
from repro.topology.builders import (
    barabasi_albert,
    binary_tree,
    clique,
    erdos_renyi,
    line,
    ring,
    star,
)
from repro.topology.model import TopologyError


class TestClique:
    def test_edge_count(self):
        topo = clique(16)
        assert len(topo) == 16
        assert len(topo.links) == 16 * 15 // 2

    def test_every_pair_linked(self):
        topo = clique(5)
        for a in topo.asns:
            assert topo.degree(a) == 4

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            clique(1)

    def test_flat_relationships(self):
        assert all(
            link.relationship is Relationship.FLAT for link in clique(4).links
        )


class TestSimpleShapes:
    def test_line(self):
        topo = line(5)
        assert len(topo.links) == 4
        assert topo.degree(1) == 1 and topo.degree(3) == 2

    def test_ring(self):
        topo = ring(5)
        assert len(topo.links) == 5
        assert all(topo.degree(a) == 2 for a in topo.asns)

    def test_ring_minimum(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_star_hub_is_provider(self):
        topo = star(5)
        assert topo.degree(1) == 4
        assert topo.customers_of(1) == [2, 3, 4, 5]

    def test_binary_tree_structure(self):
        topo = binary_tree(2)
        assert len(topo) == 7
        assert topo.customers_of(1) == [2, 3]
        assert topo.customers_of(3) == [6, 7]

    def test_tree_depth_validation(self):
        with pytest.raises(TopologyError):
            binary_tree(0)


class TestRandomModels:
    def test_erdos_renyi_is_connected(self):
        for seed in range(5):
            assert erdos_renyi(20, 0.05, seed=seed).is_connected()

    def test_erdos_renyi_deterministic_per_seed(self):
        a = erdos_renyi(15, 0.2, seed=3)
        b = erdos_renyi(15, 0.2, seed=3)
        assert [(l.a, l.b) for l in a.links] == [(l.a, l.b) for l in b.links]

    def test_erdos_renyi_seed_changes_graph(self):
        a = erdos_renyi(15, 0.2, seed=1)
        b = erdos_renyi(15, 0.2, seed=2)
        assert [(l.a, l.b) for l in a.links] != [(l.a, l.b) for l in b.links]

    def test_erdos_renyi_p_validation(self):
        with pytest.raises(TopologyError):
            erdos_renyi(10, 1.5)

    def test_barabasi_albert_connected_and_sized(self):
        topo = barabasi_albert(30, 2, seed=1)
        assert len(topo) == 30
        assert topo.is_connected()
        # BA(n, m) has (n - m) * m edges
        assert len(topo.links) == (30 - 2) * 2

    def test_barabasi_albert_hub_emerges(self):
        topo = barabasi_albert(50, 2, seed=1)
        degrees = sorted(topo.degree(a) for a in topo.asns)
        assert degrees[-1] >= 3 * degrees[0]

    def test_barabasi_albert_validation(self):
        with pytest.raises(TopologyError):
            barabasi_albert(3, 5)

    def test_asns_are_one_based_consecutive(self):
        topo = barabasi_albert(10, 2, seed=0)
        assert topo.asns == list(range(1, 11))
