"""Unit + property tests for CAIDA as-rel parsing and generation."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.policy import Relationship
from repro.topology.caida import (
    caida_hierarchy,
    dump_as_rel,
    generate_as_rel,
    parse_as_rel,
    synthetic_caida_topology,
)
from repro.topology.model import TopologyError


SAMPLE = """\
# sample as-rel
1|2|-1
1|3|-1
2|3|0
3|4|-1
"""


class TestParse:
    def test_parse_counts(self):
        topo = parse_as_rel(SAMPLE)
        assert len(topo) == 4
        assert len(topo.links) == 4

    def test_p2c_direction(self):
        topo = parse_as_rel(SAMPLE)
        assert topo.customers_of(1) == [2, 3]
        assert topo.providers_of(4) == [3]

    def test_p2p(self):
        topo = parse_as_rel(SAMPLE)
        assert topo.peers_of(2) == [3]

    def test_comments_and_blanks_ignored(self):
        topo = parse_as_rel("# only comments\n\n1|2|0\n")
        assert len(topo.links) == 1

    def test_duplicate_edges_keep_first(self):
        topo = parse_as_rel("1|2|-1\n2|1|0\n")
        assert len(topo.links) == 1
        assert topo.customers_of(1) == [2]

    @pytest.mark.parametrize("bad", ["1|2", "1|2|5", "a|2|0"])
    def test_malformed_lines_rejected(self, bad):
        with pytest.raises(TopologyError):
            parse_as_rel(bad)


class TestDump:
    def test_roundtrip_preserves_relationships(self):
        topo = parse_as_rel(SAMPLE)
        again = parse_as_rel(dump_as_rel(topo))
        assert again.customers_of(1) == topo.customers_of(1)
        assert again.peers_of(2) == topo.peers_of(2)
        assert len(again.links) == len(topo.links)


class TestGenerator:
    def test_deterministic(self):
        assert generate_as_rel(seed=5) == generate_as_rel(seed=5)

    def test_seed_matters(self):
        assert generate_as_rel(seed=1) != generate_as_rel(seed=2)

    def test_tier1_full_peering(self):
        topo = synthetic_caida_topology(tier1=4, transit=4, stubs=4, seed=0)
        for a in range(1, 5):
            peers = topo.peers_of(a)
            assert set(peers).issuperset(set(range(1, 5)) - {a})

    def test_every_nontier1_has_a_provider(self):
        topo = synthetic_caida_topology(tier1=3, transit=5, stubs=10, seed=1)
        for asn in topo.asns:
            if asn > 3:
                assert topo.providers_of(asn), f"AS{asn} has no provider"

    def test_hierarchy_is_acyclic(self):
        synthetic_caida_topology(tier1=3, transit=6, stubs=12, seed=2).validate()

    def test_roles_annotated(self):
        topo = synthetic_caida_topology(tier1=2, transit=3, stubs=4, seed=0)
        assert topo.spec(1).role == "tier1"
        assert topo.spec(3).role == "transit"
        assert topo.spec(9).role == "stub"

    def test_size_params(self):
        topo = synthetic_caida_topology(tier1=2, transit=3, stubs=4, seed=0)
        assert len(topo) == 9

    def test_param_validation(self):
        with pytest.raises(TopologyError):
            generate_as_rel(tier1=0)


@given(st.integers(min_value=0, max_value=1000))
def test_generated_files_always_parse_and_validate(seed):
    topo = parse_as_rel(generate_as_rel(tier1=3, transit=4, stubs=6, seed=seed))
    topo.validate()
    assert topo.is_connected()


def _body(dump_text):
    return [l for l in dump_text.splitlines() if not l.startswith("#")]


@given(st.integers(min_value=0, max_value=200))
def test_dump_parse_roundtrip_stable(seed):
    topo = synthetic_caida_topology(tier1=2, transit=3, stubs=5, seed=seed)
    again = parse_as_rel(dump_as_rel(topo))
    assert _body(dump_as_rel(again)) == _body(dump_as_rel(topo))


class TestCaidaHierarchy:
    """The sized sweep-style factory behind RunSpec topology="caida"."""

    def test_total_size_is_exact(self):
        for n in (2, 10, 16, 100, 1000):
            assert len(caida_hierarchy(n)) == n

    def test_asns_are_contiguous_from_one(self):
        topo = caida_hierarchy(50)
        assert topo.asns == list(range(1, 51))

    def test_deterministic_per_size(self):
        assert _body(dump_as_rel(caida_hierarchy(64))) == _body(
            dump_as_rel(caida_hierarchy(64))
        )

    def test_tiering_scales_with_size(self):
        def tier_sizes(n):
            topo = caida_hierarchy(n)
            roles = [topo._ases[a].role for a in topo.asns]
            return (roles.count("tier1"), roles.count("transit"),
                    roles.count("stub"))

        t1_small, transit_small, _ = tier_sizes(100)
        t1_big, transit_big, stubs_big = tier_sizes(1000)
        assert t1_small < t1_big <= 10
        assert transit_small < transit_big
        assert stubs_big > transit_big  # stub-heavy, like the Internet
        assert sum(tier_sizes(1000)) == 1000

    def test_connected_and_valid(self):
        topo = caida_hierarchy(200)
        topo.validate()
        assert topo.is_connected()

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            caida_hierarchy(1)
