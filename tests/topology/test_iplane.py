"""Unit + property tests for iPlane inter-PoP parsing and generation."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.iplane import (
    generate_interpop,
    parse_interpop,
    synthetic_iplane_topology,
)
from repro.topology.model import TopologyError


SAMPLE = """\
# sample inter-PoP links
1_0 2_0 10.0
1_1 2_1 20.0
2_0 3_0 5.0
3_0 3_1 1.0
"""


class TestParse:
    def test_pops_collapse_to_ases(self):
        topo = parse_interpop(SAMPLE)
        assert topo.asns == [1, 2, 3]
        assert len(topo.links) == 2

    def test_intra_as_pop_links_dropped(self):
        topo = parse_interpop(SAMPLE)
        assert topo.link_between(3, 3) is None

    def test_latency_is_median_in_seconds(self):
        topo = parse_interpop(SAMPLE)
        link = topo.link_between(1, 2)
        assert link.latency == pytest.approx(0.015)  # median(10, 20) ms

    def test_bare_asn_pop_ids(self):
        topo = parse_interpop("7 9 3.0\n")
        assert topo.asns == [7, 9]

    def test_missing_latency_uses_default(self):
        topo = parse_interpop("1_0 2_0\n")
        assert topo.link_between(1, 2).latency == pytest.approx(0.010)

    @pytest.mark.parametrize("bad", ["1_0", "x_0 2_0 1.0", "1_0 2_0 fast"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(TopologyError):
            parse_interpop(bad)


class TestGenerator:
    def test_deterministic(self):
        assert generate_interpop(seed=4) == generate_interpop(seed=4)

    def test_connected(self):
        for seed in range(5):
            assert synthetic_iplane_topology(n_as=12, seed=seed).is_connected()

    def test_size(self):
        topo = synthetic_iplane_topology(n_as=10, seed=0)
        assert len(topo) == 10

    def test_latencies_positive(self):
        topo = synthetic_iplane_topology(n_as=10, seed=0)
        assert all(link.latency > 0 for link in topo.links)

    def test_param_validation(self):
        with pytest.raises(TopologyError):
            generate_interpop(n_as=1)


@given(st.integers(min_value=0, max_value=500))
def test_generated_files_parse_connected(seed):
    topo = synthetic_iplane_topology(n_as=8, seed=seed)
    assert topo.is_connected()
    assert all(link.latency > 0 for link in topo.links)
