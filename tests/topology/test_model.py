"""Unit tests for the AS-level topology model."""

import pytest

from repro.bgp.policy import Relationship
from repro.topology.model import Topology, TopologyError


def tiny():
    topo = Topology("t")
    for asn in (1, 2, 3):
        topo.add_as(asn)
    topo.add_link(1, 2, relationship=Relationship.CUSTOMER)  # 2 = 1's customer
    topo.add_link(2, 3, relationship=Relationship.PEER)
    return topo


class TestConstruction:
    def test_duplicate_as_rejected(self):
        topo = Topology()
        topo.add_as(1)
        with pytest.raises(TopologyError):
            topo.add_as(1)

    def test_nonpositive_asn_rejected(self):
        with pytest.raises(TopologyError):
            Topology().add_as(0)

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_as(1)
        with pytest.raises(TopologyError):
            topo.add_link(1, 1)

    def test_duplicate_link_rejected(self):
        topo = tiny()
        with pytest.raises(TopologyError):
            topo.add_link(2, 1)

    def test_unknown_as_in_link_rejected(self):
        topo = Topology()
        topo.add_as(1)
        with pytest.raises(TopologyError):
            topo.add_link(1, 9)


class TestQueries:
    def test_neighbors(self):
        topo = tiny()
        assert topo.neighbors(2) == [1, 3]
        assert topo.degree(2) == 2

    def test_contains_and_len(self):
        topo = tiny()
        assert 1 in topo and 9 not in topo
        assert len(topo) == 3

    def test_link_between(self):
        topo = tiny()
        assert topo.link_between(2, 1) is not None
        assert topo.link_between(1, 3) is None

    def test_relationship_views(self):
        topo = tiny()
        assert topo.customers_of(1) == [2]
        assert topo.providers_of(2) == [1]
        assert topo.peers_of(2) == [3]
        assert topo.peers_of(1) == []

    def test_relationship_for_each_endpoint(self):
        link = tiny().link_between(1, 2)
        assert link.relationship_for(1) is Relationship.CUSTOMER
        assert link.relationship_for(2) is Relationship.PROVIDER
        with pytest.raises(TopologyError):
            link.relationship_for(9)

    def test_other(self):
        link = tiny().link_between(1, 2)
        assert link.other(1) == 2 and link.other(2) == 1


class TestValidation:
    def test_valid_topology_passes(self):
        tiny().validate()

    def test_empty_topology_fails(self):
        with pytest.raises(TopologyError):
            Topology().validate()

    def test_provider_cycle_detected(self):
        topo = Topology()
        for asn in (1, 2, 3):
            topo.add_as(asn)
        # 1 provider of 2, 2 provider of 3, 3 provider of 1: cycle
        topo.add_link(1, 2, relationship=Relationship.CUSTOMER)
        topo.add_link(2, 3, relationship=Relationship.CUSTOMER)
        topo.add_link(3, 1, relationship=Relationship.CUSTOMER)
        with pytest.raises(TopologyError, match="cycle"):
            topo.validate()

    def test_is_connected(self):
        topo = tiny()
        assert topo.is_connected()
        topo.add_as(9)
        assert not topo.is_connected()


class TestExport:
    def test_to_networkx_carries_attributes(self):
        graph = tiny().to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.edges[1, 2]["relationship"] == "customer"
